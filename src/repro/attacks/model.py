"""Attack data model.

An :class:`Attack` is the ground-truth event against a single victim IP:
one or more :class:`AttackVector` s (protocol, ports, rate, spoofing
class) over a time window, plus an optional :class:`ImpairmentProfile`
describing post-attack residue (the TransIP December aftermath) or
mitigation (scrubbing). A :class:`Campaign` groups the coordinated
per-victim attacks of one incident (e.g. all three TransIP nameservers).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.net.ip import ip_to_str, slash24_of
from repro.net.ports import PORT_DNS, PROTO_ICMP, PROTO_TCP, PROTO_UDP, validate_port, validate_proto
from repro.util.timeutil import Window

_attack_ids = itertools.count(1)

# Volumetric packets in the paper's Gbps estimates work out to ~1400
# bytes (8 Gbps at 710 Kpps); we use that for volume inference.
DEFAULT_PACKET_BYTES = 1400


class Spoofing(enum.Enum):
    """How the attack sources its traffic (paper §2.1)."""

    RANDOM = "random"        # randomly/uniformly spoofed — telescope-visible
    REFLECTED = "reflected"  # spoofed-as-victim via reflectors — invisible
    UNSPOOFED = "unspoofed"  # direct from botnet — invisible
    AMPLIFIED = "amplified"  # spoofed-as-victim via DNS amplifiers —
    #                          no backscatter, but the darknet sees
    #                          reflector queries (stale amplifier lists)

    @property
    def telescope_visible(self) -> bool:
        """Visible to the darknet as victim *backscatter*."""
        return self is Spoofing.RANDOM

    @property
    def reflector_visible(self) -> bool:
        """Visible to the darknet as *reflector queries*: the attacker
        sprays its amplifier list with queries spoofed as the victim,
        and the stale share of that list falls inside the telescope."""
        return self is Spoofing.AMPLIFIED


@dataclass(frozen=True)
class AttackVector:
    """One traffic vector of an attack."""

    proto: int
    ports: Tuple[int, ...]
    pps: float
    spoofing: Spoofing = Spoofing.RANDOM
    packet_bytes: int = DEFAULT_PACKET_BYTES

    def __post_init__(self) -> None:
        validate_proto(self.proto)
        if self.proto != PROTO_ICMP and not self.ports:
            raise ValueError("TCP/UDP vectors need at least one port")
        for port in self.ports:
            validate_port(port)
        if self.pps <= 0:
            raise ValueError("vector rate must be positive")
        if self.packet_bytes <= 0:
            raise ValueError("packet size must be positive")

    @property
    def first_port(self) -> int:
        """The first targeted port (the RSDoS feed field)."""
        return self.ports[0] if self.ports else 0

    @property
    def targets_dns_port(self) -> bool:
        return PORT_DNS in self.ports

    @property
    def bits_per_second(self) -> float:
        return self.pps * self.packet_bytes * 8

    @classmethod
    def tcp_syn(cls, port: int, pps: float,
                spoofing: Spoofing = Spoofing.RANDOM) -> "AttackVector":
        return cls(PROTO_TCP, (port,), pps, spoofing, packet_bytes=60)

    @classmethod
    def udp_flood(cls, port: int, pps: float,
                  spoofing: Spoofing = Spoofing.RANDOM) -> "AttackVector":
        return cls(PROTO_UDP, (port,), pps, spoofing)

    @classmethod
    def icmp_flood(cls, pps: float,
                   spoofing: Spoofing = Spoofing.RANDOM) -> "AttackVector":
        return cls(PROTO_ICMP, (), pps, spoofing)


@dataclass(frozen=True)
class AmplificationProfile:
    """The reflection side of an amplified attack.

    An amplification attack never hits the victim directly: the
    attacker queries ``n_amplifiers`` open resolvers at ``query_pps``
    with the source spoofed as the victim, and each query elicits a
    response ``mean_baf`` times larger. Amplifier lists are harvested
    by scanning and go stale; ``list_darknet_share`` is the fraction of
    list entries that (no longer) answer and fall inside the darknet —
    the telescope's only view of this attack class (see
    :mod:`repro.telescope.reflector`).
    """

    n_amplifiers: int
    mean_baf: float
    query_pps: float
    list_darknet_share: float
    qtype: str = "ANY"

    def __post_init__(self) -> None:
        if self.n_amplifiers <= 0:
            raise ValueError("n_amplifiers must be positive")
        if self.mean_baf < 1.0:
            raise ValueError("mean_baf must be at least 1 (amplification)")
        if self.query_pps <= 0:
            raise ValueError("query_pps must be positive")
        if not 0 <= self.list_darknet_share <= 1:
            raise ValueError("list_darknet_share must be within [0, 1]")

    @property
    def darknet_list_entries(self) -> int:
        """Stale amplifier-list entries that point into the darknet."""
        return int(round(self.n_amplifiers * self.list_darknet_share))


@dataclass(frozen=True)
class ImpairmentProfile:
    """How the victim's impairment deviates from the raw attack window.

    ``aftermath_s``: impairment persists this long after the attack ends
    (e.g. operators needing manual recovery — TransIP December 2020,
    where OpenINTEL saw effects for ~8 hours past the telescope-inferred
    end). ``aftermath_load`` is the residual load factor during that
    tail, decaying linearly to zero.

    ``scrub_delay_s``/``scrub_efficiency``: a DDoS scrubbing service
    kicks in after the delay and removes that fraction of attack traffic
    (TransIP March 2021 deployed IP-level scrubbing).

    ``blackout``: the victim applies a blanket block of external clients
    (the mil.ru geofence) from ``blackout_start`` for ``blackout_s``
    seconds; during a blackout every external query is dropped
    regardless of load.
    """

    aftermath_s: int = 0
    aftermath_load: float = 0.0
    scrub_delay_s: int = 0
    scrub_efficiency: float = 0.0
    blackout_start: Optional[int] = None
    blackout_s: int = 0

    def __post_init__(self) -> None:
        if self.aftermath_s < 0 or self.blackout_s < 0 or self.scrub_delay_s < 0:
            raise ValueError("durations must be non-negative")
        if not 0 <= self.aftermath_load <= 1:
            raise ValueError("aftermath_load must be within [0, 1]")
        if not 0 <= self.scrub_efficiency <= 1:
            raise ValueError("scrub_efficiency must be within [0, 1]")


@dataclass
class Attack:
    """Ground truth for one attack against one victim IP."""

    victim_ip: int
    window: Window
    vectors: List[AttackVector]
    attack_id: int = field(default_factory=lambda: next(_attack_ids))
    campaign_id: Optional[int] = None
    impairment: ImpairmentProfile = field(default_factory=ImpairmentProfile)
    # Fraction of attack packets the victim answers while healthy
    # (SYN->SYN/ACK ~ 1.0; many UDP floods elicit ICMP at a lower rate).
    response_ratio: float = 1.0
    #: Number of distinct addresses the attacker spoofs from. ``None``
    #: means the full IPv4 space; bounded pools reproduce the paper's
    #: "attacker IP count" magnitudes (Table 2).
    spoof_pool_size: Optional[int] = None
    #: Reflection parameters of an amplified attack (``None`` for
    #: direct/backscatter-class attacks). When set, the darknet can see
    #: the attack as reflector queries even though it produces no
    #: backscatter.
    amplification: Optional[AmplificationProfile] = None

    def __post_init__(self) -> None:
        if not self.vectors:
            raise ValueError("an attack needs at least one vector")
        if not 0 < self.response_ratio <= 1:
            raise ValueError("response_ratio must be within (0, 1]")
        if self.spoof_pool_size is not None and self.spoof_pool_size <= 0:
            raise ValueError("spoof_pool_size must be positive")
        if self.amplification is not None and not any(
                v.spoofing is Spoofing.AMPLIFIED for v in self.vectors):
            raise ValueError(
                "an amplification profile needs an AMPLIFIED vector")

    # -- rates ----------------------------------------------------------------

    @property
    def total_pps(self) -> float:
        """Full load hitting the victim (all spoofing classes)."""
        return sum(v.pps for v in self.vectors)

    @property
    def spoofed_pps(self) -> float:
        """Telescope-relevant rate: randomly spoofed vectors only."""
        return sum(v.pps for v in self.vectors if v.spoofing.telescope_visible)

    @property
    def bits_per_second(self) -> float:
        return sum(v.bits_per_second for v in self.vectors)

    def effective_pps(self, ts: int) -> float:
        """Attack load at instant ``ts`` after scrubbing/aftermath.

        Inside the window: full rate, reduced by scrubbing once
        deployed. In the aftermath tail: residual load decaying linearly.
        Elsewhere: zero.
        """
        imp = self.impairment
        if self.window.contains(ts):
            rate = self.total_pps
            if imp.scrub_efficiency > 0 and ts >= self.window.start + imp.scrub_delay_s:
                rate *= 1.0 - imp.scrub_efficiency
            return rate
        if imp.aftermath_s > 0 and self.window.end <= ts < self.window.end + imp.aftermath_s:
            progress = (ts - self.window.end) / imp.aftermath_s
            return self.total_pps * imp.aftermath_load * (1.0 - progress)
        return 0.0

    def effective_spoofed_pps(self, ts: int) -> float:
        """Spoofed-vector load at ``ts`` (drives backscatter)."""
        total = self.total_pps
        if total <= 0:
            return 0.0
        # Scrubbing and aftermath scale all vectors proportionally.
        return self.effective_pps(ts) * (self.spoofed_pps / total) \
            if self.window.contains(ts) else 0.0

    def blackout_window(self) -> Optional[Window]:
        imp = self.impairment
        if imp.blackout_start is None or imp.blackout_s <= 0:
            return None
        return Window(imp.blackout_start, imp.blackout_start + imp.blackout_s)

    # -- classification ---------------------------------------------------------

    @property
    def impact_window(self) -> Window:
        """Window during which the victim may be impaired (attack +
        aftermath + blackout)."""
        end = self.window.end + self.impairment.aftermath_s
        blackout = self.blackout_window()
        if blackout is not None:
            end = max(end, blackout.end)
        return Window(self.window.start, end)

    @property
    def is_single_port(self) -> bool:
        ports = {p for v in self.vectors for p in v.ports}
        protos = {v.proto for v in self.vectors}
        return len(ports) <= 1 and len(protos) == 1

    @property
    def targets_dns_port(self) -> bool:
        return any(v.targets_dns_port for v in self.vectors)

    @property
    def is_multi_vector(self) -> bool:
        return len(self.vectors) > 1

    @property
    def telescope_visible(self) -> bool:
        return any(v.spoofing.telescope_visible for v in self.vectors)

    @property
    def reflector_visible(self) -> bool:
        """Observable at the darknet as reflector queries."""
        return (self.amplification is not None
                and self.amplification.darknet_list_entries > 0
                and any(v.spoofing.reflector_visible for v in self.vectors))

    @property
    def victim_slash24(self) -> int:
        return slash24_of(self.victim_ip)

    @property
    def duration_s(self) -> int:
        return self.window.duration

    def __repr__(self) -> str:
        return (f"Attack(#{self.attack_id} on {ip_to_str(self.victim_ip)} "
                f"{self.window}, {len(self.vectors)} vector(s), "
                f"{self.total_pps:.0f} pps)")


@dataclass
class Campaign:
    """A coordinated incident: the per-victim attacks of one event."""

    name: str
    attacks: List[Attack] = field(default_factory=list)
    campaign_id: int = field(default_factory=lambda: next(_attack_ids))

    def __post_init__(self) -> None:
        for attack in self.attacks:
            attack.campaign_id = self.campaign_id

    def add(self, attack: Attack) -> None:
        attack.campaign_id = self.campaign_id
        self.attacks.append(attack)

    @property
    def victims(self) -> Tuple[int, ...]:
        return tuple(sorted({a.victim_ip for a in self.attacks}))

    @property
    def window(self) -> Window:
        if not self.attacks:
            raise ValueError("empty campaign has no window")
        return Window(min(a.window.start for a in self.attacks),
                      max(a.window.end for a in self.attacks))
