"""Scenario packs: the pluggable attack-class layer.

The attack plane is not hard-wired into the pipeline: an attack class
is a :class:`ScenarioPack` — a named plugin bundling the world hooks
(extra infrastructure and enrichment), a schedule generator (extra
ground-truth attacks), a telescope signature (how the darknet sees the
class), and analysis hooks (a pack-specific report section). The
registry maps pack names to implementations, ``WorldConfig`` carries
the selected pack (name + params, both fingerprinted), and
``build_world``/``run_study`` call the hooks at fixed points — so a
new attack class is a new module, never a fork of the pipeline.

The paper's randomly-spoofed volumetric model is itself the first
pack (:class:`VolumetricPack`): every one of its hooks is a no-op on
top of the background generator and the scripted case studies, so the
default path is byte-identical to the pre-pack pipeline.

Three more packs ship with the library (each registered lazily, so
importing this module stays cheap and cycle-free):

* ``amplification`` (:mod:`repro.attacks.amplification`) — reflection
  attacks with BAF distributions and a reflector-query telescope
  branch (:mod:`repro.telescope.reflector`);
* ``wartime`` (:mod:`repro.attacks.wartime`) — correlated geopolitical
  attack waves with target-country enrichment, generalizing the
  mil.ru/RZD case studies;
* ``defense`` (:mod:`repro.attacks.defense`) — layered mitigations
  evaluated as counterfactuals over the schedule
  (:mod:`repro.core.counterfactual`).

Determinism contract: a pack draws only from RNG streams namespaced
``pack:<name>...`` (:meth:`repro.util.rng.RngStreams.stream`), so
installing or selecting a pack never perturbs the background world
build — and the volumetric pack, which draws nothing, leaves every
existing stream untouched.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Type

from repro.attacks.model import Attack

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telescope.reflector import ReflectorFeed

__all__ = ["TelescopeSignature", "ScenarioPack", "VolumetricPack",
           "UnknownPackError", "register_pack", "get_pack",
           "available_packs", "validate_pack_name", "DEFAULT_PACK"]

#: the pack every config selects unless told otherwise.
DEFAULT_PACK = "volumetric"

#: Built-in packs, resolved lazily: pack modules may import world and
#: telescope machinery, which in turn import this module's registry.
_BUILTIN: Dict[str, Tuple[str, str]] = {
    "volumetric": ("repro.attacks.packs", "VolumetricPack"),
    "amplification": ("repro.attacks.amplification", "AmplificationPack"),
    "wartime": ("repro.attacks.wartime", "WartimePack"),
    "defense": ("repro.attacks.defense", "DefensePack"),
}

_REGISTRY: Dict[str, Type["ScenarioPack"]] = {}


class UnknownPackError(ValueError):
    """Raised for a scenario-pack name nobody registered."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(
            f"unknown scenario pack {name!r}; available packs: "
            + ", ".join(available_packs()))


@dataclass(frozen=True)
class TelescopeSignature:
    """How a pack's attacks reach the darknet.

    ``backscatter`` — victims of randomly-spoofed vectors answer into
    the telescope (the RSDoS default, inferred by
    :mod:`repro.telescope.rsdos`). ``reflector_queries`` — attackers
    spray stale amplifier lists whose dead entries fall inside the
    telescope, seen as queries spoofed as the victim (inferred by
    :mod:`repro.telescope.reflector` and merged into the join as a
    second curated feed).
    """

    backscatter: bool = True
    reflector_queries: bool = False


class ScenarioPack:
    """One pluggable attack class (the pack protocol).

    Subclasses override the hooks they need; every default is a no-op,
    so a pack only pays for what it changes. Packs must be stateless
    beyond ``params``: ``build_world`` and the engine's conditional
    nodes construct instances independently, and any randomness must
    come from ``world.rngs.stream("pack:<name>", ...)`` streams.
    """

    #: registry name (also the CLI ``--scenario-pack`` value).
    name: str = "abstract"
    #: one-line description for ``repro packs ls``.
    description: str = ""

    def __init__(self, params=None):
        #: the pack's parameter dataclass; fingerprinted via
        #: ``WorldConfig.pack_params`` when carried by a config.
        self.params = params if params is not None else self.default_params()

    @classmethod
    def default_params(cls):
        """The pack's default parameter dataclass (``None`` if the
        pack has no knobs)."""
        return None

    # -- world hooks ----------------------------------------------------------

    def install_world(self, world, gen) -> None:
        """Add pack infrastructure (providers, domains, enrichment) to
        a world under construction. Runs after the scripted scenario
        install and before prefix2AS/AS2Org are derived."""

    def generate_attacks(self, world) -> List[Attack]:
        """Extra ground-truth attacks on top of the background
        schedule (and the scripted scenarios, when installed)."""
        return []

    # -- telescope hooks ------------------------------------------------------

    def telescope_signature(self) -> TelescopeSignature:
        """How this pack's attacks appear at the darknet."""
        return TelescopeSignature()

    def observe_darknet(self, world) -> Optional["ReflectorFeed"]:
        """Run the pack's extra darknet inference branch (only called
        when :meth:`telescope_signature` declares reflector queries)."""
        return None

    # -- analysis hooks -------------------------------------------------------

    @property
    def has_counterfactuals(self) -> bool:
        """Does this pack evaluate mitigation counterfactuals?"""
        return False

    def counterfactuals(self, world, events):
        """Counterfactual analysis over the finished run (only called
        when :attr:`has_counterfactuals` is true)."""
        return None

    def analyze(self, study):
        """Pack-specific analysis of a finished study (``None`` when
        the pack adds nothing)."""
        return None

    def report_section(self, study) -> Optional[str]:
        """Extra report section text (``None`` keeps the default
        report byte-identical)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.params!r})"


@dataclass(frozen=True)
class VolumetricParams:
    """The volumetric pack has no knobs of its own — the background
    generator is configured by ``WorldConfig.schedule`` — but carries a
    params type so every pack fingerprints uniformly."""


class VolumetricPack(ScenarioPack):
    """The paper's attack model: randomly-spoofed volumetric floods.

    The background schedule generator
    (:func:`repro.attacks.generator.generate_schedule`) and the
    scripted case studies (:mod:`repro.world.scenarios`) *are* this
    pack; every hook is therefore a no-op and the default path runs
    byte-identically to the pre-pack pipeline (the goldens assert it).
    """

    name = "volumetric"
    description = ("randomly-spoofed volumetric floods — the paper's "
                   "default attack model (backscatter-inferred)")

    @classmethod
    def default_params(cls):
        return VolumetricParams()


_REGISTRY[VolumetricPack.name] = VolumetricPack


def register_pack(cls: Type[ScenarioPack]) -> Type[ScenarioPack]:
    """Register a pack class under its ``name`` (usable as a
    decorator); later registrations win, so tests can shadow."""
    if not cls.name or cls.name == "abstract":
        raise ValueError("a scenario pack needs a concrete name")
    _REGISTRY[cls.name] = cls
    return cls


def available_packs() -> List[str]:
    """All registered pack names, sorted."""
    return sorted(set(_REGISTRY) | set(_BUILTIN))


def validate_pack_name(name: str) -> str:
    """Return ``name`` if it resolves to a pack, else raise
    :class:`UnknownPackError` (cheap: never imports pack modules)."""
    if name not in _REGISTRY and name not in _BUILTIN:
        raise UnknownPackError(name)
    return name


def get_pack(name: str, params=None) -> ScenarioPack:
    """Instantiate the pack registered under ``name``.

    ``params`` overrides the pack's default parameter dataclass (this
    is what ``WorldConfig.pack_params`` carries). Unknown names raise
    :class:`UnknownPackError` listing what is available.
    """
    cls = _REGISTRY.get(name)
    if cls is None:
        spec = _BUILTIN.get(name)
        if spec is None:
            raise UnknownPackError(name)
        module = importlib.import_module(spec[0])
        cls = getattr(module, spec[1])
        _REGISTRY[name] = cls
    return cls(params)
