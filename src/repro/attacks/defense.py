"""The defense scenario pack: layered mitigations as counterfactuals.

This pack schedules no attacks of its own: it takes whatever the world
already carries — the background volumetric schedule plus the scripted
case studies — and asks, for each attack on a modelled nameserver,
what the Equation-1 impact *would have been* had the victim deployed
each mitigation layer (upstream filtering, capacity surge, anycast
scale-out, and the layered combination). The evaluation runs after the
ordinary pipeline as the ``counterfactuals`` conditional node, through
the unmodified impact machinery (:mod:`repro.core.counterfactual`), and
reports per-attack impact deltas.

The pack is deterministic and draws no randomness: the world build and
every default-path artifact stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.attacks.packs import ScenarioPack, register_pack
from repro.core.counterfactual import (
    DEFAULT_LAYERS,
    DefenseReport,
    MitigationLayer,
    evaluate_defenses,
)

__all__ = ["DefenseParams", "DefensePack"]


@dataclass(frozen=True)
class DefenseParams:
    """Knobs of the defense pack (all fingerprinted)."""

    #: the mitigation stack to evaluate.
    layers: Tuple[MitigationLayer, ...] = field(default=DEFAULT_LAYERS)
    #: restrict the evaluation to attacks the pipeline surfaced as
    #: events (the measured population) instead of all ground truth.
    events_only: bool = False

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("need at least one mitigation layer")


@register_pack
class DefensePack(ScenarioPack):
    """Layered-mitigation counterfactuals over the existing schedule."""

    name = "defense"
    description = ("layered mitigations (filtering, capacity surge, "
                   "anycast scale-out) as per-attack impact-delta "
                   "counterfactuals")

    @classmethod
    def default_params(cls):
        return DefenseParams()

    @property
    def has_counterfactuals(self) -> bool:
        return True

    def counterfactuals(self, world, events) -> DefenseReport:
        p: DefenseParams = self.params
        return evaluate_defenses(
            world, events=events if p.events_only else None,
            layers=p.layers)

    def analyze(self, study) -> Optional[DefenseReport]:
        return study.counterfactuals

    def report_section(self, study) -> Optional[str]:
        report: Optional[DefenseReport] = study.counterfactuals
        if report is None:
            return None
        lines = ["Defense pack (mitigation counterfactuals)",
                 "-----------------------------------------"]
        lines.append(
            f"  attacks evaluated: {report.n_attacks} "
            f"({len(report.harmful_rows())} harmful, baseline mean "
            f"impact {report.mean_impact():.1f}x)")
        for layer in report.layers:
            lines.append(
                f"  {layer.name:<17} mean impact "
                f"{report.mean_impact(layer.name):6.1f}x  "
                f"(delta {report.mean_delta(layer.name):6.1f}, "
                f"neutralizes {report.neutralized_share(layer.name):.0%})")
        return "\n".join(lines)
