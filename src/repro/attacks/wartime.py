"""The wartime scenario pack: correlated geopolitical attack waves.

The paper's §5.2 case studies (mil.ru, RZD) are two hand-scripted
snapshots of a much broader phenomenon: after February 2022, DDoS
against Russian state and infrastructure targets arrived in *waves* —
many organizations of one country hit in the same few days, repeatedly.
This pack generalizes the scripted pair: it enriches the world with
additional target-country sector organizations (government, banking,
media, transport) and schedules correlated attack waves across every
provider whose organization carries the target country code — which
picks up the scripted mil.ru/RZD providers too, when scenarios are
installed.

Attacks mix spoofing classes the way the paper's §2.1 taxonomy does:
a ``reflected_share`` of each wave's floods are spoofed-as-victim
(telescope-invisible), exercising the visibility-limitations analysis
at campaign scale.

All randomness draws from ``pack:wartime`` streams; selecting the pack
never perturbs the background build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.attacks.model import Attack, AttackVector, Spoofing
from repro.attacks.packs import ScenarioPack, register_pack
from repro.net.ports import PORT_DNS, PROTO_UDP
from repro.util.timeutil import DAY, HOUR, MINUTE, Window

__all__ = ["WartimeParams", "WartimePack", "WartimeWave", "WartimeAnalysis"]

#: sector names used for the enrichment organizations.
SECTORS = ("gov", "bank", "media", "transport", "energy")


@dataclass(frozen=True)
class WartimeParams:
    """Knobs of the wartime pack (all fingerprinted)."""

    #: organizations of this country code are wave targets.
    target_country: str = "RU"
    #: extra sector organizations/providers installed into the world.
    n_extra_orgs: int = 4
    #: number of correlated attack waves.
    n_waves: int = 3
    #: length of one wave in days.
    wave_days: int = 2
    #: quiet days between waves.
    gap_days: int = 9
    #: peak flood rate per victim nameserver (pps).
    intensity_pps: float = 60_000.0
    #: share of each wave's floods that are reflected (spoofed-as-
    #: victim, telescope-invisible) rather than randomly spoofed.
    reflected_share: float = 0.4
    #: first wave starts this many days into the timeline; ``None``
    #: centers the campaign on the timeline's final quarter (the
    #: February-2022 flavour of the paper window).
    start_day: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_extra_orgs < 0 or self.n_waves < 1:
            raise ValueError("need at least one wave")
        if self.wave_days < 1 or self.gap_days < 0:
            raise ValueError("invalid wave spacing")
        if self.intensity_pps <= 0:
            raise ValueError("intensity must be positive")
        if not 0 <= self.reflected_share <= 1:
            raise ValueError("reflected_share must be within [0, 1]")


@dataclass
class WartimeWave:
    """One wave of the campaign timeline."""

    index: int
    start: int
    end: int
    n_attacks: int
    n_orgs: int
    spoofed_visible: int   # attacks with a randomly-spoofed vector


@dataclass
class WartimeAnalysis:
    """The per-wave campaign timeline."""

    target_country: str
    waves: List[WartimeWave]

    @property
    def n_attacks(self) -> int:
        return sum(w.n_attacks for w in self.waves)


@register_pack
class WartimePack(ScenarioPack):
    """Correlated attack waves against one country's organizations."""

    name = "wartime"
    description = ("correlated geopolitical attack waves with "
                   "target-country org enrichment (mil.ru/RZD "
                   "generalized)")

    @classmethod
    def default_params(cls):
        return WartimeParams()

    # -- world enrichment ----------------------------------------------------

    def install_world(self, world, gen) -> None:
        """Add target-country sector orgs and self-hosted providers."""
        from repro.dns.name import DomainName
        from repro.world.domains import _delegation_for
        from repro.world.hosting import (DeploymentProfile, ProfileKind,
                                         build_provider)

        p: WartimeParams = self.params
        rng = world.rngs.stream("pack:wartime", "install")
        internet = world.internet
        cc = p.target_country.lower()
        for i in range(p.n_extra_orgs):
            sector = SECTORS[i % len(SECTORS)]
            org = internet.add_org(
                f"{p.target_country} {sector} #{i + 1}",
                country=p.target_country)
            asys = internet.add_as(org, number=210_000 + i,
                                   country=p.target_country)
            profile = DeploymentProfile(
                ProfileKind.SELF_HOSTED,
                n_nameservers=2 + (i % 2), n_prefixes=1,
                server_capacity_pps=float(rng.choice((20_000, 30_000, 50_000))),
                link_bps=1e9)
            name = f"{p.target_country}-{sector}-{i + 1}"
            provider = build_provider(
                internet, rng, name, org, [asys], profile, weight=0.0,
                ns_domain=f"{sector}{i + 1}.{cc}")
            world.add_provider(provider)
            world.directory.add(
                DomainName(f"{sector}{i + 1}.{cc}"), provider,
                _delegation_for(provider, None, f"{sector}{i + 1}.{cc}"))

    # -- schedule ------------------------------------------------------------

    def _target_providers(self, world) -> List:
        p: WartimeParams = self.params
        return [prov for name, prov in sorted(world.providers.items())
                if prov.org is not None
                and prov.org.country == p.target_country]

    def generate_attacks(self, world) -> List[Attack]:
        p: WartimeParams = self.params
        rng = world.rngs.stream("pack:wartime", "schedule")
        providers = self._target_providers(world)
        if not providers:
            return []
        timeline = world.timeline
        n_days = max(1, timeline.window.duration // DAY)
        campaign_days = p.n_waves * p.wave_days \
            + (p.n_waves - 1) * p.gap_days
        if p.start_day is not None:
            first = p.start_day
        else:
            first = max(0, int(n_days * 0.75) - campaign_days // 2)
        attacks: List[Attack] = []
        for wave in range(p.n_waves):
            day0 = first + wave * (p.wave_days + p.gap_days)
            wave_start = timeline.window.start + day0 * DAY
            for provider in providers:
                # Waves escalate: later waves hit harder and longer.
                scale = 1.0 + 0.35 * wave
                offset = rng.randrange(0, p.wave_days * DAY - 8 * HOUR, MINUTE)
                duration = rng.randrange(2 * HOUR, 8 * HOUR, MINUTE)
                start = wave_start + offset
                end = start + int(duration * scale)
                if not (start in timeline and end <= timeline.end):
                    continue
                reflected = rng.random() < p.reflected_share
                for ns in provider.nameservers:
                    rate = p.intensity_pps * scale \
                        * (0.8 + rng.random() * 0.4)
                    if reflected:
                        vectors = [AttackVector(
                            PROTO_UDP, (PORT_DNS,), rate,
                            Spoofing.REFLECTED, 1400)]
                    else:
                        vectors = [AttackVector.udp_flood(PORT_DNS, rate)]
                    attacks.append(Attack(
                        victim_ip=ns.ip, window=Window(start, end),
                        vectors=vectors,
                        spoof_pool_size=None if reflected
                        else rng.randrange(500_000, 5_000_000)))
        return attacks

    # -- analysis ------------------------------------------------------------

    def _wave_windows(self, world) -> List[Window]:
        p: WartimeParams = self.params
        timeline = world.timeline
        n_days = max(1, timeline.window.duration // DAY)
        campaign_days = p.n_waves * p.wave_days \
            + (p.n_waves - 1) * p.gap_days
        if p.start_day is not None:
            first = p.start_day
        else:
            first = max(0, int(n_days * 0.75) - campaign_days // 2)
        out = []
        for wave in range(p.n_waves):
            day0 = first + wave * (p.wave_days + p.gap_days)
            start = timeline.window.start + day0 * DAY
            # Escalating durations can spill past the nominal wave days.
            out.append(Window(start, start + (p.wave_days + 1) * DAY))
        return out

    def analyze(self, study) -> WartimeAnalysis:
        p: WartimeParams = self.params
        providers = self._target_providers(study.world)
        target_ips = {ns.ip for prov in providers
                      for ns in prov.nameservers}
        ip_org = {ns.ip: prov.org.name for prov in providers
                  for ns in prov.nameservers}
        waves: List[WartimeWave] = []
        for i, window in enumerate(self._wave_windows(study.world)):
            hits = [a for a in study.world.attacks
                    if a.victim_ip in target_ips
                    and a.window.start < window.end
                    and window.start < a.window.end]
            waves.append(WartimeWave(
                index=i, start=window.start, end=window.end,
                n_attacks=len(hits),
                n_orgs=len({ip_org[a.victim_ip] for a in hits}),
                spoofed_visible=sum(1 for a in hits
                                    if a.telescope_visible)))
        return WartimeAnalysis(target_country=p.target_country, waves=waves)

    def report_section(self, study) -> Optional[str]:
        analysis = self.analyze(study)
        lines = [f"Wartime pack ({analysis.target_country} waves)",
                 "-----------------------------------------------"]
        for w in analysis.waves:
            lines.append(
                f"  wave {w.index + 1}: {w.n_attacks} attacks on "
                f"{w.n_orgs} orgs ({w.spoofed_visible} telescope-visible)")
        return "\n".join(lines)
