"""Attack schedule generation.

Produces the 17-month attack landscape the telescope and OpenINTEL then
observe. The empirical mixes come straight from the paper's §6:

* DNS-infrastructure attacks are ~0.6-2.1% of all attacks (Table 3);
* 80.7% of them are single-port; protocol mix TCP 90.4% / UDP 8.4% /
  ICMP 1.2%; TCP ports 80 (37%) > 53 (30%) > 443 (~20%); one third of
  UDP attacks hit port 53 (Figure 6);
* durations are bimodal around 15 minutes and 1 hour (Figure 10);
* telescope-inferred intensities are bimodal around 50 and 6000 packets
  per minute at the telescope, i.e. ~284 pps and ~34 Kpps of victim
  response traffic after the x341/60 extrapolation (§6.4);
* a tail of attacks is reflected/unspoofed and therefore invisible to
  the telescope (§4.3; ~40% per Jonker et al.), and some visible attacks
  carry an extra invisible vector (multi-vector under-estimation).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.attacks.model import Attack, AttackVector, Spoofing
from repro.net.ip import slash24_of
from repro.net.ports import PORT_DNS, PORT_HTTP, PORT_HTTPS, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.util.rng import weighted_choice
from repro.util.timeutil import DAY, HOUR, MINUTE, Timeline, Window, month_key

# Victim-response pps corresponding to the paper's bimodal telescope
# modes (50 ppm and 6000 ppm, extrapolated by x341/60).
LOW_MODE_PPS = 284.0
HIGH_MODE_PPS = 34_100.0


@dataclass(frozen=True)
class AttackMix:
    """Protocol/port mixture for generated attacks."""

    single_port_fraction: float = 0.807
    proto_weights: Tuple[Tuple[int, float], ...] = (
        (PROTO_TCP, 0.904), (PROTO_UDP, 0.084), (PROTO_ICMP, 0.012))
    tcp_port_weights: Tuple[Tuple[int, float], ...] = (
        (PORT_HTTP, 0.37), (PORT_DNS, 0.30), (PORT_HTTPS, 0.20),
        (22, 0.05), (25, 0.03), (8080, 0.05))
    udp_port_weights: Tuple[Tuple[int, float], ...] = (
        (PORT_DNS, 0.334), (123, 0.12), (443, 0.10), (19, 0.10),
        (11211, 0.08), (27015, 0.266))

    def pick_proto(self, rng: random.Random) -> int:
        protos, weights = zip(*self.proto_weights)
        return weighted_choice(rng, protos, weights)

    def pick_ports(self, rng: random.Random, proto: int) -> Tuple[int, ...]:
        if proto == PROTO_ICMP:
            return ()
        table = self.tcp_port_weights if proto == PROTO_TCP else self.udp_port_weights
        ports, weights = zip(*table)
        first = weighted_choice(rng, ports, weights)
        if rng.random() < self.single_port_fraction:
            return (first,)
        extra = rng.randint(1, 4)
        chosen = [first]
        for _ in range(extra):
            port = rng.randrange(1, 0xFFFF)
            if port not in chosen:
                chosen.append(port)
        return tuple(chosen)


# A generic mix for non-DNS victims (web/gaming/hosting): dominated by
# TCP 80/443 and game-server UDP ports.
GENERIC_MIX = AttackMix(
    single_port_fraction=0.75,
    proto_weights=((PROTO_TCP, 0.80), (PROTO_UDP, 0.17), (PROTO_ICMP, 0.03)),
    tcp_port_weights=((PORT_HTTP, 0.45), (PORT_HTTPS, 0.25), (22, 0.08),
                      (25, 0.05), (3074, 0.07), (8080, 0.10)),
    udp_port_weights=((27015, 0.35), (3074, 0.20), (123, 0.10),
                      (PORT_DNS, 0.10), (19, 0.10), (11211, 0.15)),
)


@dataclass(frozen=True)
class HotTarget:
    """A frequently-attacked IP (Table 5's public resolvers etc.).

    ``n_attacks`` is the paper-scale count; the generator multiplies by
    the schedule's ``scale``.
    """

    ip: int
    n_attacks: int
    label: str = ""
    months: Optional[Tuple[Tuple[int, int], ...]] = None  # restrict to months


@dataclass
class TargetCatalog:
    """Victim pools the generator draws from.

    ``ns_ip_weights`` maps nameserver IPs to a selection weight (we use
    the square root of hosted-domain counts: big providers attract more
    attacks, sub-linearly). ``other_ips`` are non-DNS victims.
    """

    ns_ip_weights: Dict[int, float] = field(default_factory=dict)
    other_ips: List[int] = field(default_factory=list)
    hot_targets: List[HotTarget] = field(default_factory=list)
    #: nameserver IP -> all nameserver IPs of the same deployment; used
    #: by campaign-style attacks that hit every NS at once (the pattern
    #: of every §5 case study: "the attacker targeted all three
    #: nameservers").
    ns_groups: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not all(w > 0 for w in self.ns_ip_weights.values()):
            raise ValueError("nameserver weights must be positive")


@dataclass(frozen=True)
class AttackScheduleConfig:
    """Shape of the generated 17-month schedule."""

    attacks_per_month: int = 2000
    dns_attack_fraction: float = 0.012      # paper: 0.57%..2.12%, avg 1.21%
    scale: float = 1.0                      # multiplier on hot-target counts
    #: share of DNS attacks that hit every nameserver of the deployment.
    campaign_fraction: float = 0.22
    invisible_fraction: float = 0.12        # reflected/unspoofed only
    multi_vector_fraction: float = 0.10     # visible + invisible extra vector
    colocated_fraction: float = 0.04        # hits a non-NS IP in an NS /24
    high_intensity_fraction: float = 0.30   # bimodal mixture weight
    mid_intensity_fraction: float = 0.10    # between the two modes
    heavy_tail_fraction: float = 0.03       # very large attacks
    long_duration_fraction: float = 0.04    # multi-hour background noise

    def __post_init__(self) -> None:
        for name in ("dns_attack_fraction", "invisible_fraction",
                     "multi_vector_fraction", "colocated_fraction",
                     "high_intensity_fraction", "mid_intensity_fraction",
                     "heavy_tail_fraction", "long_duration_fraction",
                     "campaign_fraction"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.attacks_per_month < 0:
            raise ValueError("attacks_per_month must be non-negative")


def sample_duration(rng: random.Random, cfg: AttackScheduleConfig) -> int:
    """Bimodal attack duration: modes at ~15 min and ~1 h (Figure 10)."""
    roll = rng.random()
    if roll < cfg.long_duration_fraction:
        return int(rng.uniform(2 * HOUR, 20 * HOUR))
    if roll < cfg.long_duration_fraction + 0.48:
        mode = 15 * MINUTE
    else:
        mode = 1 * HOUR
    value = rng.lognormvariate(math.log(mode), 0.35)
    return max(5 * MINUTE, min(int(value), 24 * HOUR))


def sample_intensity(rng: random.Random, cfg: AttackScheduleConfig) -> float:
    """Bimodal victim-response pps (the §6.4 50/6000 ppm modes), with a
    mid-range component and a heavy tail of very large attacks."""
    roll = rng.random()
    if roll < cfg.heavy_tail_fraction:
        return rng.lognormvariate(math.log(HIGH_MODE_PPS * 10), 0.7)
    if roll < cfg.heavy_tail_fraction + cfg.high_intensity_fraction:
        return rng.lognormvariate(math.log(HIGH_MODE_PPS), 0.9)
    if roll < (cfg.heavy_tail_fraction + cfg.high_intensity_fraction
               + cfg.mid_intensity_fraction):
        return rng.lognormvariate(math.log(4_000.0), 0.7)
    return rng.lognormvariate(math.log(LOW_MODE_PPS), 0.8)


def _build_vectors(rng: random.Random, mix: AttackMix, pps: float,
                   cfg: AttackScheduleConfig, visible: bool) -> List[AttackVector]:
    proto = mix.pick_proto(rng)
    ports = mix.pick_ports(rng, proto)
    spoofing = Spoofing.RANDOM if visible else rng.choice(
        (Spoofing.REFLECTED, Spoofing.UNSPOOFED))
    packet_bytes = 60 if proto == PROTO_TCP else 1400
    vectors = [AttackVector(proto, ports, pps, spoofing, packet_bytes)]
    if visible and rng.random() < cfg.multi_vector_fraction:
        # Extra invisible vector the telescope under-counts (§6.4).
        extra_pps = pps * rng.uniform(0.5, 3.0)
        extra_proto = PROTO_UDP if proto == PROTO_TCP else PROTO_TCP
        extra_ports = mix.pick_ports(rng, extra_proto)
        vectors.append(AttackVector(extra_proto, extra_ports, extra_pps,
                                    Spoofing.REFLECTED))
    return vectors


def generate_schedule(rng: random.Random, timeline: Timeline,
                      catalog: TargetCatalog,
                      config: Optional[AttackScheduleConfig] = None,
                      mix: Optional[AttackMix] = None) -> List[Attack]:
    """Generate the background attack schedule over the timeline.

    Scripted case-study campaigns (TransIP, mil.ru, ...) are added on
    top of this by :mod:`repro.world.scenarios`.
    """
    config = config or AttackScheduleConfig()
    dns_mix = mix or AttackMix()
    ns_ips = list(catalog.ns_ip_weights)
    ns_weights = [catalog.ns_ip_weights[ip] for ip in ns_ips]
    attacks: List[Attack] = []

    month_bounds = _month_bounds(timeline)
    for (year, month), (m_start, m_end) in month_bounds.items():
        n = config.attacks_per_month
        n = max(0, int(rng.gauss(n, n * 0.18))) if n else 0
        for _ in range(n):
            start = rng.randrange(m_start, m_end)
            duration = sample_duration(rng, config)
            pps = sample_intensity(rng, config)
            visible = rng.random() >= config.invisible_fraction
            if ns_ips and rng.random() < config.dns_attack_fraction:
                victim = weighted_choice(rng, ns_ips, ns_weights)
                vectors = _build_vectors(rng, dns_mix, pps, config, visible)
                group = catalog.ns_groups.get(victim, ())
                if len(group) > 1 and rng.random() < config.campaign_fraction:
                    window = Window(start, start + duration)
                    for ip in group:
                        attacks.append(Attack(victim_ip=ip, window=window,
                                              vectors=list(vectors)))
                    continue
            elif ns_ips and rng.random() < config.colocated_fraction:
                # A co-tenant of a nameserver /24: stresses the shared
                # link but is not itself DNS infrastructure.
                base = slash24_of(rng.choice(ns_ips))
                victim = base | rng.randrange(1, 255)
                if victim in catalog.ns_ip_weights:
                    victim = base | 254
                vectors = _build_vectors(rng, GENERIC_MIX, pps, config, visible)
            else:
                victim = rng.choice(catalog.other_ips) if catalog.other_ips else 1 << 24
                vectors = _build_vectors(rng, GENERIC_MIX, pps, config, visible)
            attacks.append(Attack(
                victim_ip=victim,
                window=Window(start, start + duration),
                vectors=vectors,
            ))

    attacks.extend(_hot_target_attacks(rng, timeline, catalog, config, month_bounds))
    attacks.sort(key=lambda a: (a.window.start, a.victim_ip))
    return attacks


def _hot_target_attacks(rng: random.Random, timeline: Timeline,
                        catalog: TargetCatalog, config: AttackScheduleConfig,
                        month_bounds: Dict[Tuple[int, int], Tuple[int, int]]
                        ) -> List[Attack]:
    """Frequent low-impact attacks against hot targets (Table 5)."""
    out: List[Attack] = []
    for hot in catalog.hot_targets:
        n = max(1, int(round(hot.n_attacks * config.scale)))
        if hot.months:
            eligible = [month_bounds[m] for m in hot.months if m in month_bounds]
        else:
            eligible = list(month_bounds.values())
        if not eligible:
            continue
        for _ in range(n):
            m_start, m_end = rng.choice(eligible)
            start = rng.randrange(m_start, m_end)
            duration = sample_duration(rng, config)
            # Hot targets are mostly hit by the low mode: heavily
            # provisioned anycast services shrug these off (Table 5).
            pps = rng.lognormvariate(math.log(LOW_MODE_PPS * 4), 0.9)
            vectors = _build_vectors(rng, GENERIC_MIX, pps, config, visible=True)
            out.append(Attack(hot.ip, Window(start, start + duration), vectors))
    return out


def _month_bounds(timeline: Timeline) -> Dict[Tuple[int, int], Tuple[int, int]]:
    bounds: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for day in timeline.days():
        key = month_key(day)
        start, end = bounds.get(key, (day, day))
        bounds[key] = (min(start, day), max(end, day + DAY))
    return bounds
