"""The amplification scenario pack: DNS reflection attacks.

The attacker never sends a packet to the victim. It queries a harvested
list of open resolvers with the source address spoofed as the victim,
and each small query elicits a response ``BAF`` (bandwidth amplification
factor) times larger — the victim drowns in UDP/53 *responses*. Two
consequences drive the pack's design ("The Far Side of DNS
Amplification" flavour, see PAPERS.md):

* **no backscatter** — the victim answers nothing, so the RSDoS branch
  is structurally blind to the whole class
  (``Spoofing.AMPLIFIED.telescope_visible`` is False);
* **reflector queries** — amplifier lists go stale, and the stale
  entries that fall inside the darknet receive the attacker's query
  spray, spoofed as the victim. The pack's telescope branch
  (:mod:`repro.telescope.reflector`) infers attacks from that
  signature and feeds them into the join as a second curated feed.

Everything random draws from the ``pack:amplification`` stream family,
so selecting this pack never perturbs the background world build.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.attacks.model import (
    Attack,
    AmplificationProfile,
    AttackVector,
    Spoofing,
)
from repro.attacks.packs import ScenarioPack, TelescopeSignature, register_pack
from repro.net.ports import PORT_DNS, PROTO_UDP
from repro.util.timeutil import MINUTE, Window

__all__ = ["AmplificationParams", "AmplificationPack",
           "AmplificationAnalysis"]

#: bytes of one EDNS0 ``ANY`` query — the numerator of the BAF.
QUERY_BYTES = 64
#: on-the-wire MTU ceiling: amplified responses fragment at this size.
FRAGMENT_BYTES = 1400


@dataclass(frozen=True)
class AmplificationParams:
    """Knobs of the amplification pack (all fingerprinted)."""

    #: reflection attacks to schedule across the timeline.
    n_attacks: int = 6
    #: amplifier-list size per attack (open resolvers the attacker
    #: sprays; the paper-adjacent harvests run 10^3-10^5).
    n_amplifiers: int = 6_000
    #: mean bandwidth amplification factor (DNS ``ANY`` ~ 28-64).
    mean_baf: float = 32.0
    #: lognormal sigma of the per-attack BAF draw.
    baf_sigma: float = 0.35
    #: attacker-side query rate sprayed over the list.
    query_pps: float = 25_000.0
    #: fraction of list entries that are stale and fall inside the
    #: darknet (the telescope's only view of the attack).
    list_darknet_share: float = 0.0035
    #: query type sent to the amplifiers.
    qtype: str = "ANY"
    #: attack duration in seconds.
    duration_s: int = 1_800

    def __post_init__(self) -> None:
        if self.n_attacks < 0:
            raise ValueError("n_attacks must be non-negative")
        if self.n_amplifiers <= 0 or self.query_pps <= 0:
            raise ValueError("amplifier population and rate must be positive")
        if self.mean_baf < 1.0:
            raise ValueError("mean_baf must be at least 1")
        if not 0 <= self.list_darknet_share <= 1:
            raise ValueError("list_darknet_share must be within [0, 1]")
        if self.duration_s < MINUTE:
            raise ValueError("duration_s must be at least one minute")


@dataclass
class AmplificationAnalysis:
    """Validation of the reflector branch against ground truth."""

    n_scheduled: int      # reflector-visible ground-truth attacks
    n_inferred: int       # reflections the darknet branch inferred
    n_matched: int        # scheduled attacks matched by an inferred one
    mean_baf: float

    @property
    def recall(self) -> float:
        return self.n_matched / self.n_scheduled if self.n_scheduled else 0.0


@register_pack
class AmplificationPack(ScenarioPack):
    """DNS reflection/amplification attacks + reflector-query inference."""

    name = "amplification"
    description = ("DNS reflection floods (BAF-amplified, no backscatter) "
                   "inferred from darknet reflector queries")

    @classmethod
    def default_params(cls):
        return AmplificationParams()

    # -- schedule ------------------------------------------------------------

    def generate_attacks(self, world) -> List[Attack]:
        p: AmplificationParams = self.params
        if p.n_attacks == 0:
            return []
        rng = world.rngs.stream("pack:amplification", "schedule")
        victims = sorted(ip for ip in world.directory.nameserver_ips()
                         if ip in world.nameservers_by_ip)
        if not victims:
            return []
        window = world.timeline.window
        span = window.duration - p.duration_s
        attacks: List[Attack] = []
        for _ in range(p.n_attacks):
            victim = rng.choice(victims)
            start = window.start + rng.randrange(max(1, span // MINUTE)) * MINUTE
            baf = max(2.0, p.mean_baf * math.exp(rng.gauss(0.0, p.baf_sigma)))
            query_pps = p.query_pps * (0.75 + rng.random() * 0.5)
            profile = AmplificationProfile(
                n_amplifiers=p.n_amplifiers, mean_baf=baf,
                query_pps=query_pps,
                list_darknet_share=p.list_darknet_share, qtype=p.qtype)
            attacks.append(Attack(
                victim_ip=victim,
                window=Window(start, start + p.duration_s),
                vectors=[self._response_vector(query_pps, baf)],
                amplification=profile))
        return attacks

    @staticmethod
    def _response_vector(query_pps: float, baf: float) -> AttackVector:
        """The victim-side flood implied by the reflection: every query
        returns ``baf x QUERY_BYTES`` bytes of UDP/53 responses,
        fragmenting at the MTU."""
        response_bytes = baf * QUERY_BYTES
        n_fragments = max(1, math.ceil(response_bytes / FRAGMENT_BYTES))
        return AttackVector(
            PROTO_UDP, (PORT_DNS,),
            pps=query_pps * n_fragments,
            spoofing=Spoofing.AMPLIFIED,
            packet_bytes=max(1, int(round(response_bytes / n_fragments))))

    # -- telescope -----------------------------------------------------------

    def telescope_signature(self) -> TelescopeSignature:
        return TelescopeSignature(backscatter=True, reflector_queries=True)

    def observe_darknet(self, world):
        from repro.telescope.darknet import Darknet
        from repro.telescope.reflector import ReflectorFeed, ReflectorSimulator

        simulator = ReflectorSimulator(
            Darknet(),
            jitter_seed=world.rngs.spawn_seed("pack:amplification",
                                              "reflector"))
        baf_of: Dict[int, float] = {
            a.victim_ip: a.amplification.mean_baf
            for a in world.attacks if a.amplification is not None}
        return ReflectorFeed.observe(world.attacks, simulator, baf_of=baf_of)

    # -- analysis ------------------------------------------------------------

    def analyze(self, study) -> Optional[AmplificationAnalysis]:
        feed = study.reflector_feed
        if feed is None:
            return None
        from repro.telescope.reflector import match_reflections

        pairs = match_reflections(study.world.attacks, feed.reflections)
        bafs = [a.amplification.mean_baf for a in study.world.attacks
                if a.amplification is not None]
        return AmplificationAnalysis(
            n_scheduled=len(pairs),
            n_inferred=len(feed.reflections),
            n_matched=sum(1 for _, r in pairs if r is not None),
            mean_baf=sum(bafs) / len(bafs) if bafs else 0.0)

    def report_section(self, study) -> Optional[str]:
        analysis = self.analyze(study)
        if analysis is None:
            return None
        lines = ["Amplification pack (reflector-query branch)",
                 "-------------------------------------------"]
        lines.append(
            f"  scheduled reflections: {analysis.n_scheduled} "
            f"(mean BAF {analysis.mean_baf:.1f})")
        lines.append(
            f"  inferred at darknet:   {analysis.n_inferred} "
            f"({analysis.n_matched} matched, "
            f"recall {analysis.recall:.0%})")
        return "\n".join(lines)
