"""Tests for the open-resolver scan and dataset bundle I/O."""

import io

import pytest

from repro.datasets.io import dataset_bundle_dump, dataset_bundle_load
from repro.datasets.openresolvers import OpenResolverScan
from repro.net.ip import parse_ip


class TestOpenResolverScan:
    def test_membership(self):
        scan = OpenResolverScan([parse_ip("8.8.8.8")])
        assert scan.is_open_resolver(parse_ip("8.8.8.8"))
        assert parse_ip("8.8.8.8") in scan
        assert parse_ip("9.9.9.9") not in scan

    def test_add_accepts_strings(self):
        scan = OpenResolverScan()
        scan.add("1.1.1.1")
        assert parse_ip("1.1.1.1") in scan

    def test_filter_out(self):
        scan = OpenResolverScan([1, 2])
        assert list(scan.filter_out([1, 2, 3, 4])) == [3, 4]

    def test_from_world(self, tiny_world):
        scan = OpenResolverScan.from_world(tiny_world)
        assert parse_ip("8.8.8.8") in scan
        assert parse_ip("8.8.4.4") in scan
        assert parse_ip("1.1.1.1") in scan
        # Bing is a misconfig target but not an open resolver.
        assert parse_ip("204.79.197.200") not in scan

    def test_dump_load_roundtrip(self):
        scan = OpenResolverScan([parse_ip("8.8.8.8"), parse_ip("1.1.1.1")],
                                scanned_at=12345)
        buf = io.StringIO()
        scan.dump(buf)
        buf.seek(0)
        loaded = OpenResolverScan.load(buf)
        assert len(loaded) == 2
        assert loaded.scanned_at == 12345
        assert parse_ip("8.8.8.8") in loaded


class TestDatasetBundle:
    def test_roundtrip(self, tmp_path, tiny_study):
        path = str(tmp_path / "bundle")
        dataset_bundle_dump(
            path,
            feed=tiny_study.feed,
            prefix2as=tiny_study.world.prefix2as,
            as2org=tiny_study.world.as2org,
            census=tiny_study.world.census,
            openresolvers=tiny_study.open_resolvers,
        )
        bundle = dataset_bundle_load(path)
        assert bundle.feed_records is not None
        assert len(bundle.feed_records) == len(tiny_study.feed.records)
        assert len(bundle.prefix2as) == len(
            list(tiny_study.world.prefix2as.entries()))
        assert len(bundle.as2org) > 0
        assert len(bundle.census.snapshots) == \
            len(tiny_study.world.census.snapshots)
        assert parse_ip("8.8.8.8") in bundle.openresolvers

    def test_partial_dump(self, tmp_path, tiny_study):
        path = str(tmp_path / "partial")
        dataset_bundle_dump(path, openresolvers=tiny_study.open_resolvers)
        bundle = dataset_bundle_load(path)
        assert bundle.openresolvers is not None
        assert bundle.feed_records is None
        assert bundle.census is None
