"""Dataset-bundle round-trips: dump -> load -> semantic equality.

Semantic equality is asserted the strongest way the text formats allow:
re-dumping a loaded bundle must reproduce every file byte-for-byte (the
formats are deterministic), plus per-kind content checks. A partial
bundle leaves absent slots ``None``; a corrupt file raises
:class:`DatasetBundleError` naming the offending path.
"""

import os

import pytest

from repro.datasets.io import (_FILES, DatasetBundleError,
                               dataset_bundle_dump, dataset_bundle_load)
from repro.net.ip import parse_ip
from repro.telescope.feed import RSDoSFeed


def _dump_full(path, study):
    dataset_bundle_dump(
        path,
        feed=study.feed,
        prefix2as=study.world.prefix2as,
        as2org=study.world.as2org,
        census=study.world.census,
        openresolvers=study.open_resolvers,
    )


@pytest.fixture(scope="module")
def bundle_dir(tmp_path_factory, tiny_study):
    path = str(tmp_path_factory.mktemp("bundles") / "full")
    _dump_full(path, tiny_study)
    return path


class TestSemanticEquality:
    def test_redump_is_byte_identical(self, bundle_dir, tmp_path):
        """Every dataset kind survives dump -> load -> dump unchanged."""
        loaded = dataset_bundle_load(bundle_dir)
        second = str(tmp_path / "second")
        dataset_bundle_dump(
            second,
            feed=RSDoSFeed(loaded.feed_records, []),
            prefix2as=loaded.prefix2as,
            as2org=loaded.as2org,
            census=loaded.census,
            openresolvers=loaded.openresolvers,
        )
        for filename in _FILES.values():
            a = os.path.join(bundle_dir, filename)
            b = os.path.join(second, filename)
            with open(a, "rb") as fa, open(b, "rb") as fb:
                assert fa.read() == fb.read(), filename

    def test_feed_records_match(self, bundle_dir, tiny_study):
        loaded = dataset_bundle_load(bundle_dir)
        assert len(loaded.feed_records) == len(tiny_study.feed.records)
        got = loaded.feed_records[0]
        want = tiny_study.feed.records[0]
        assert (got.window_ts, got.victim_ip) == \
            (want.window_ts, want.victim_ip)

    def test_prefix2as_lookups_match(self, bundle_dir, tiny_study):
        loaded = dataset_bundle_load(bundle_dir)
        original = tiny_study.world.prefix2as
        assert len(loaded.prefix2as) == len(list(original.entries()))
        for prefix, asn in list(original.entries())[:50]:
            assert loaded.prefix2as.lookup(prefix.network) == asn

    def test_as2org_names_match(self, bundle_dir, tiny_study):
        loaded = dataset_bundle_load(bundle_dir)
        original = tiny_study.world.as2org
        assert len(loaded.as2org) == len(original)

    def test_census_snapshots_match(self, bundle_dir, tiny_study):
        loaded = dataset_bundle_load(bundle_dir)
        assert len(loaded.census.snapshots) == \
            len(tiny_study.world.census.snapshots)

    def test_openresolvers_membership_matches(self, bundle_dir, tiny_study):
        loaded = dataset_bundle_load(bundle_dir)
        assert len(loaded.openresolvers) == len(tiny_study.open_resolvers)
        assert parse_ip("8.8.8.8") in loaded.openresolvers


class TestPartialBundle:
    def test_absent_files_leave_slots_none(self, tmp_path, tiny_study):
        path = str(tmp_path / "partial")
        dataset_bundle_dump(path, feed=tiny_study.feed,
                            openresolvers=tiny_study.open_resolvers)
        bundle = dataset_bundle_load(path)
        assert bundle.feed_records is not None
        assert bundle.openresolvers is not None
        assert bundle.prefix2as is None
        assert bundle.as2org is None
        assert bundle.census is None

    def test_empty_directory_loads_all_none(self, tmp_path):
        path = str(tmp_path / "empty")
        os.makedirs(path)
        bundle = dataset_bundle_load(path)
        assert all(getattr(bundle, slot) is None for slot in
                   ("feed_records", "prefix2as", "as2org", "census",
                    "openresolvers"))


class TestCorruptFiles:
    @pytest.mark.parametrize("kind", sorted(_FILES))
    def test_corrupt_file_raises_naming_path(self, bundle_dir, tmp_path,
                                             tiny_study, kind):
        """Damage each dataset kind in turn; the error names the file."""
        path = str(tmp_path / "corrupt")
        _dump_full(path, tiny_study)
        victim = os.path.join(path, _FILES[kind])
        with open(victim, "w") as fp:
            fp.write("this is not a valid dataset file\n")
        with pytest.raises(DatasetBundleError) as excinfo:
            dataset_bundle_load(path)
        assert victim in str(excinfo.value)

    def test_error_is_a_value_error(self):
        assert issubclass(DatasetBundleError, ValueError)
