"""Tests for the agnostic resolver — the mechanism behind the paper's
RTT-inflation signal."""

import random

import pytest

from repro.dns.name import DomainName
from repro.dns.rcode import ResponseStatus
from repro.dns.resolver import AgnosticResolver, ResolverConfig
from repro.dns.rr import RRType
from repro.dns.server import ServerReply

NS_A, NS_B, NS_C = 0x0A000001, 0x0A000002, 0x0A000003


def make_resolver(transport, seed=1, **config_kwargs):
    return AgnosticResolver(transport, random.Random(seed),
                            ResolverConfig(**config_kwargs))


def scripted(replies):
    """Transport answering per-server from a dict of reply factories."""
    def transport(ns_ip, qname, qtype, ts):
        entry = replies[ns_ip]
        return entry() if callable(entry) else entry
    return transport


class TestHappyPath:
    def test_single_healthy_server(self):
        resolver = make_resolver(scripted({NS_A: ServerReply.ok(20.0)}))
        result = resolver.resolve("example.com", RRType.NS, [NS_A], when=0)
        assert result.status is ResponseStatus.OK
        assert result.rtt_ms == pytest.approx(20.0)
        assert result.n_attempts == 1
        assert result.answering_ns == NS_A

    def test_random_selection_covers_all_servers(self):
        counts = {NS_A: 0, NS_B: 0, NS_C: 0}

        def transport(ns_ip, qname, qtype, ts):
            counts[ns_ip] += 1
            return ServerReply.ok(10.0)

        resolver = make_resolver(transport)
        for _ in range(600):
            resolver.resolve("example.com", RRType.NS,
                             [NS_A, NS_B, NS_C], when=0)
        for count in counts.values():
            assert 130 < count < 270  # roughly uniform

    def test_empty_server_list(self):
        resolver = make_resolver(scripted({}))
        result = resolver.resolve("example.com", RRType.NS, [], when=0)
        assert result.status is ResponseStatus.NETWORK_ERROR


class TestRetryBehaviour:
    def test_dead_server_burns_timeout_then_retries(self):
        replies = {NS_A: ServerReply.dropped(), NS_B: ServerReply.ok(15.0)}
        resolver = make_resolver(scripted(replies), seed=3)
        # Force first pick to be the dead server by resolving until we
        # observe a 2-attempt resolution.
        saw_retry = False
        for _ in range(50):
            result = resolver.resolve("example.com", RRType.NS,
                                      [NS_A, NS_B], when=0)
            assert result.status is ResponseStatus.OK
            if result.n_attempts == 2:
                saw_retry = True
                # Total time = one burned timeout + the answer RTT.
                assert result.rtt_ms == pytest.approx(1500.0 + 15.0)
        assert saw_retry

    def test_no_immediate_repeat_of_timed_out_server(self):
        replies = {NS_A: ServerReply.dropped(), NS_B: ServerReply.ok(10.0)}
        resolver = make_resolver(scripted(replies), seed=7)
        for _ in range(30):
            result = resolver.resolve("example.com", RRType.NS,
                                      [NS_A, NS_B], when=0)
            ips = [o.ns_ip for o in result.attempts]
            for prev, nxt in zip(ips, ips[1:]):
                assert prev != nxt

    def test_all_dead_is_timeout_at_deadline(self):
        resolver = make_resolver(scripted({NS_A: ServerReply.dropped(),
                                           NS_B: ServerReply.dropped()}))
        result = resolver.resolve("example.com", RRType.NS,
                                  [NS_A, NS_B], when=0)
        assert result.status is ResponseStatus.TIMEOUT
        assert result.rtt_ms <= 15000.0
        assert result.answering_ns is None

    def test_exponential_backoff(self):
        times = []

        def transport(ns_ip, qname, qtype, ts):
            times.append(ts)
            return ServerReply.dropped()

        resolver = make_resolver(transport)
        resolver.resolve("example.com", RRType.NS, [NS_A, NS_B], when=0)
        # Attempt instants advance by the (doubling) timeouts: 1.5, 3, 6...
        deltas = [round(b - a, 1) for a, b in zip(times, times[1:])]
        assert deltas[0] == pytest.approx(1.5)
        assert deltas[1] == pytest.approx(3.0)
        assert deltas[2] == pytest.approx(6.0)

    def test_slow_reply_beyond_timer_counts_as_timeout(self):
        replies = {NS_A: ServerReply.ok(2000.0), NS_B: ServerReply.ok(10.0)}
        resolver = make_resolver(scripted(replies), seed=2)
        for _ in range(30):
            result = resolver.resolve("example.com", RRType.NS,
                                      [NS_A, NS_B], when=0)
            assert result.status is ResponseStatus.OK
            # Whenever NS_A was tried first, the client burned 1500 ms.
            if result.n_attempts > 1:
                assert result.rtt_ms >= 1500.0

    def test_max_attempts_respected(self):
        resolver = make_resolver(scripted({NS_A: ServerReply.dropped()}),
                                 max_attempts=3, deadline_ms=100000.0)
        result = resolver.resolve("example.com", RRType.NS, [NS_A], when=0)
        assert result.n_attempts == 3


class TestServfail:
    def test_servfail_retries_other_server(self):
        replies = {NS_A: ServerReply.servfail(5.0), NS_B: ServerReply.ok(10.0)}
        resolver = make_resolver(scripted(replies), seed=4)
        for _ in range(30):
            result = resolver.resolve("example.com", RRType.NS,
                                      [NS_A, NS_B], when=0)
            assert result.status is ResponseStatus.OK

    def test_all_servfail_reports_servfail(self):
        resolver = make_resolver(scripted({NS_A: ServerReply.servfail(5.0),
                                           NS_B: ServerReply.servfail(5.0)}))
        result = resolver.resolve("example.com", RRType.NS,
                                  [NS_A, NS_B], when=0)
        assert result.status is ResponseStatus.SERVFAIL

    def test_terminal_servfail_config(self):
        resolver = make_resolver(scripted({NS_A: ServerReply.servfail(5.0)}),
                                 servfail_is_terminal=True)
        result = resolver.resolve("example.com", RRType.NS, [NS_A], when=0)
        assert result.status is ResponseStatus.SERVFAIL
        assert result.n_attempts == 1


class TestTimeAccounting:
    def test_transport_sees_advancing_time(self):
        seen = []

        def transport(ns_ip, qname, qtype, ts):
            seen.append(ts)
            return ServerReply.dropped() if len(seen) < 3 else ServerReply.ok(10)

        resolver = make_resolver(transport)
        resolver.resolve("example.com", RRType.NS, [NS_A, NS_B], when=1000.0)
        assert seen[0] == pytest.approx(1000.0)
        assert seen == sorted(seen)

    def test_rtt_includes_all_burned_time(self):
        calls = {"n": 0}

        def transport(ns_ip, qname, qtype, ts):
            calls["n"] += 1
            if calls["n"] <= 2:
                return ServerReply.dropped()
            return ServerReply.ok(25.0)

        resolver = make_resolver(transport)
        result = resolver.resolve("example.com", RRType.NS,
                                  [NS_A, NS_B], when=0)
        assert result.rtt_ms == pytest.approx(1500.0 + 3000.0 + 25.0)


class TestConfigValidation:
    def test_rejects_bad_timeouts(self):
        with pytest.raises(ValueError):
            ResolverConfig(attempt_timeout_ms=0)
        with pytest.raises(ValueError):
            ResolverConfig(attempt_timeout_ms=100, max_timeout_ms=50)

    def test_rejects_bad_attempts(self):
        with pytest.raises(ValueError):
            ResolverConfig(max_attempts=0)

    def test_rejects_bad_deadline(self):
        with pytest.raises(ValueError):
            ResolverConfig(deadline_ms=0)


class TestDeadlineClamping:
    """The attempt timers must never be allowed to overrun the overall
    client budget (the bug: a deadline below the default 1500 ms attempt
    timeout let one timer firing blow past the deadline)."""

    def test_attempt_timeout_clamped_to_deadline(self):
        config = ResolverConfig(deadline_ms=1000.0, attempt_timeout_ms=1500.0)
        assert config.attempt_timeout_ms == 1000.0
        assert config.max_timeout_ms == 1000.0

    def test_max_timeout_clamped_to_deadline(self):
        config = ResolverConfig(deadline_ms=4000.0)
        assert config.attempt_timeout_ms == 1500.0  # already within budget
        assert config.max_timeout_ms == 4000.0

    def test_no_clamp_when_within_budget(self):
        config = ResolverConfig()
        assert config.attempt_timeout_ms == 1500.0
        assert config.max_timeout_ms == 6000.0

    def test_resolve_never_exceeds_tight_deadline(self):
        resolver = make_resolver(scripted({NS_A: ServerReply.dropped(),
                                           NS_B: ServerReply.dropped()}),
                                 deadline_ms=1000.0)
        result = resolver.resolve("example.com", RRType.NS,
                                  [NS_A, NS_B], when=0)
        assert result.status is ResponseStatus.TIMEOUT
        assert result.rtt_ms <= 1000.0

    def test_slow_answer_within_clamped_timer_still_wins(self):
        # 800 ms answer fits the clamped 1000 ms timer; without the
        # clamp a 1500 ms timer would also accept it, but a dropped
        # first attempt would have burned 1500 of the 1000 ms budget.
        resolver = make_resolver(scripted({NS_A: ServerReply.ok(800.0)}),
                                 deadline_ms=1000.0)
        result = resolver.resolve("example.com", RRType.NS, [NS_A], when=0)
        assert result.status is ResponseStatus.OK
        assert result.rtt_ms == pytest.approx(800.0)


class TestRetransmissionEdgeCases:
    def test_backoff_caps_at_max_timeout(self):
        times = []

        def transport(ns_ip, qname, qtype, ts):
            times.append(ts)
            return ServerReply.dropped()

        resolver = make_resolver(transport, max_timeout_ms=3000.0,
                                 deadline_ms=100000.0, max_attempts=6)
        resolver.resolve("example.com", RRType.NS, [NS_A, NS_B], when=0)
        deltas = [round(b - a, 1) for a, b in zip(times, times[1:])]
        # 1.5 doubles once to 3.0 then stays capped there.
        assert deltas == [1.5, 3.0, 3.0, 3.0, 3.0]

    def test_deadline_expiry_mid_attempt_truncates_elapsed(self):
        # Deadline 2000 ms: the first burned timeout costs 1500, the
        # second timer (3000 ms) overruns the remaining 500 — the client
        # gives up at exactly the deadline, not at 4500.
        resolver = make_resolver(scripted({NS_A: ServerReply.dropped(),
                                           NS_B: ServerReply.dropped()}),
                                 deadline_ms=2000.0)
        result = resolver.resolve("example.com", RRType.NS,
                                  [NS_A, NS_B], when=0)
        assert result.status is ResponseStatus.TIMEOUT
        assert result.rtt_ms == pytest.approx(2000.0)
        # The final truncated attempt is recorded as a drop.
        assert not result.attempts[-1].reply.answered

    def test_servfail_seen_before_deadline_expiry_wins_verdict(self):
        # One server SERVFAILs fast, the other is dead: when the budget
        # runs out the resolver reports SERVFAIL (unbound's verdict),
        # not TIMEOUT.
        resolver = make_resolver(scripted({NS_A: ServerReply.servfail(5.0),
                                           NS_B: ServerReply.dropped()}),
                                 seed=6, deadline_ms=3000.0)
        result = resolver.resolve("example.com", RRType.NS,
                                  [NS_A, NS_B], when=0)
        assert result.status is ResponseStatus.SERVFAIL

    def test_refused_counts_toward_servfail_verdict(self):
        from repro.dns.rcode import Rcode

        resolver = make_resolver(scripted({
            NS_A: ServerReply(rtt_ms=5.0, rcode=Rcode.REFUSED)}))
        result = resolver.resolve("example.com", RRType.NS, [NS_A], when=0)
        assert result.status is ResponseStatus.SERVFAIL

    def test_single_server_is_retried_despite_demotion(self):
        # With one server there is no alternative: the no-immediate-
        # repeat rule must not deadlock the pick loop.
        calls = {"n": 0}

        def transport(ns_ip, qname, qtype, ts):
            calls["n"] += 1
            return ServerReply.dropped() if calls["n"] < 3 else ServerReply.ok(9.0)

        resolver = make_resolver(transport)
        result = resolver.resolve("example.com", RRType.NS, [NS_A], when=0)
        assert result.status is ResponseStatus.OK
        assert result.n_attempts == 3


class TestResolutionResult:
    def test_servers_tried_unique_in_order(self):
        replies = {NS_A: ServerReply.dropped(), NS_B: ServerReply.dropped(),
                   NS_C: ServerReply.ok(10.0)}
        resolver = make_resolver(scripted(replies), seed=5)
        result = resolver.resolve("example.com", RRType.NS,
                                  [NS_A, NS_B, NS_C], when=0)
        tried = result.servers_tried
        assert len(tried) == len(set(tried))

    def test_qname_normalized(self):
        resolver = make_resolver(scripted({NS_A: ServerReply.ok(1.0)}))
        result = resolver.resolve("EXAMPLE.com", RRType.NS, [NS_A], when=0)
        assert result.qname == DomainName("example.com")
