"""Tests for resource records, RRsets, zones, and delegations."""

import pytest

from repro.dns.name import DomainName
from repro.dns.rr import (
    DEFAULT_TTL,
    RRType,
    RRset,
    ResourceRecord,
    SoaData,
    a_rrset,
    ns_rrset,
)
from repro.dns.zone import Delegation, Zone
from repro.net.ip import parse_ip


class TestResourceRecord:
    def test_a_record_coerces_ip(self):
        rr = ResourceRecord("example.com", RRType.A, "192.0.2.1")
        assert rr.rdata == parse_ip("192.0.2.1")
        assert rr.rdata_text() == "192.0.2.1"

    def test_ns_record(self):
        rr = ResourceRecord("example.com", RRType.NS, "ns1.example.com")
        assert rr.rdata == DomainName("ns1.example.com")

    def test_txt_record_from_str(self):
        rr = ResourceRecord("example.com", RRType.TXT, "hello")
        assert rr.rdata == b"hello"

    def test_soa_requires_soadata(self):
        with pytest.raises(TypeError):
            ResourceRecord("example.com", RRType.SOA, "junk")

    def test_aaaa_requires_16_bytes(self):
        with pytest.raises(TypeError):
            ResourceRecord("example.com", RRType.AAAA, b"short")
        rr = ResourceRecord("example.com", RRType.AAAA, b"\x00" * 16)
        assert len(rr.rdata) == 16

    def test_rejects_bad_ttl(self):
        with pytest.raises(ValueError):
            ResourceRecord("example.com", RRType.A, 1, ttl=-1)

    def test_str_contains_fields(self):
        rr = ResourceRecord("example.com", RRType.A, "192.0.2.1", ttl=60)
        text = str(rr)
        assert "example.com" in text and "A" in text and "192.0.2.1" in text


class TestRRset:
    def test_add_deduplicates(self):
        rrset = RRset(DomainName("example.com"), RRType.A)
        rrset.add("192.0.2.1")
        rrset.add("192.0.2.1")
        assert len(rrset) == 1

    def test_ttl_is_minimum(self):
        rrset = RRset(DomainName("example.com"), RRType.A)
        rrset.add("192.0.2.1", ttl=300)
        rrset.add("192.0.2.2", ttl=60)
        assert rrset.ttl == 60

    def test_rejects_foreign_record(self):
        rr = ResourceRecord("other.com", RRType.A, 1)
        with pytest.raises(ValueError):
            RRset(DomainName("example.com"), RRType.A, [rr])

    def test_helpers(self):
        ns = ns_rrset("example.com", ["ns1.example.com", "ns2.example.com"])
        assert len(ns) == 2
        a = a_rrset("example.com", ["192.0.2.1"])
        assert a.rdatas() == (parse_ip("192.0.2.1"),)

    def test_bool(self):
        assert not RRset(DomainName("example.com"), RRType.A)


class TestZone:
    def test_auto_soa(self):
        zone = Zone("example.com")
        assert zone.soa.serial == 1

    def test_bump_serial(self):
        zone = Zone("example.com")
        assert zone.bump_serial() == 2
        assert zone.soa.serial == 2

    def test_add_and_get(self):
        zone = Zone("example.com")
        zone.add_record("www.example.com", RRType.A, "192.0.2.1")
        rrset = zone.get_rrset("www.example.com", RRType.A)
        assert rrset is not None and len(rrset) == 1

    def test_rejects_out_of_zone(self):
        zone = Zone("example.com")
        with pytest.raises(ValueError):
            zone.add_record("other.com", RRType.A, 1)

    def test_set_ns(self):
        zone = Zone("example.com")
        zone.set_ns(["ns1.example.com", "ns2.example.com"])
        assert len(zone.ns_hosts) == 2
        zone.set_ns(["ns3.example.com"])
        assert len(zone.ns_hosts) == 1

    def test_names_sorted(self):
        zone = Zone("example.com")
        zone.add_record("b.example.com", RRType.A, 1)
        zone.add_record("a.example.com", RRType.A, 2)
        names = zone.names()
        assert names == sorted(names)

    def test_has_name(self):
        zone = Zone("example.com")
        assert zone.has_name("example.com")
        assert not zone.has_name("www.example.com")


class TestDelegation:
    def _delegation(self):
        return Delegation.build("example.com", {
            "ns1.host.net": (parse_ip("192.0.2.1"),),
            "ns2.host.net": (parse_ip("192.0.2.2"), parse_ip("192.0.2.3")),
        })

    def test_nameserver_ips_sorted_unique(self):
        d = self._delegation()
        assert d.nameserver_ips == tuple(sorted(d.nameserver_ips))
        assert len(set(d.nameserver_ips)) == 3

    def test_shared_ip_deduplicated(self):
        d = Delegation.build("example.com", {
            "ns1.host.net": (5,),
            "ns2.host.net": (5,),
        })
        assert d.nameserver_ips == (5,)

    def test_hosts(self):
        d = self._delegation()
        assert DomainName("ns1.host.net") in d.nameserver_hosts

    def test_addresses_of(self):
        d = self._delegation()
        assert d.addresses_of("ns2.host.net") == (
            parse_ip("192.0.2.2"), parse_ip("192.0.2.3"))

    def test_addresses_of_unknown_raises(self):
        with pytest.raises(KeyError):
            self._delegation().addresses_of("nope.host.net")

    def test_len(self):
        assert len(self._delegation()) == 2

    def test_hashable(self):
        assert hash(self._delegation()) == hash(self._delegation())
