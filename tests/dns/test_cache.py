"""Tests for the TTL cache."""

import pytest

from repro.dns.cache import DnsCache
from repro.dns.name import DomainName
from repro.dns.rr import RRType, RRset


def _rrset(name="example.com", ttl=300):
    rrset = RRset(DomainName(name), RRType.A)
    rrset.add("192.0.2.1", ttl=ttl)
    return rrset


class TestDnsCache:
    def test_miss_then_hit(self):
        cache = DnsCache()
        assert cache.get("example.com", RRType.A, now=0) is None
        cache.put(_rrset(), now=0)
        assert cache.get("example.com", RRType.A, now=100) is not None
        assert cache.hits == 1 and cache.misses == 1

    def test_expiry(self):
        cache = DnsCache()
        cache.put(_rrset(ttl=300), now=0)
        assert cache.get("example.com", RRType.A, now=299) is not None
        assert cache.get("example.com", RRType.A, now=300) is None
        assert cache.expirations == 1

    def test_remaining_ttl(self):
        cache = DnsCache()
        cache.put(_rrset(ttl=300), now=100)
        assert cache.remaining_ttl("example.com", RRType.A, now=150) == 250
        assert cache.remaining_ttl("example.com", RRType.A, now=500) == 0

    def test_zero_ttl_not_cached(self):
        cache = DnsCache()
        cache.put(_rrset(), now=0, ttl=0)
        assert len(cache) == 0

    def test_empty_rrset_not_cached(self):
        cache = DnsCache()
        cache.put(RRset(DomainName("example.com"), RRType.A), now=0)
        assert len(cache) == 0

    def test_eviction_at_capacity(self):
        cache = DnsCache(max_entries=2)
        cache.put(_rrset("a.com"), now=0)
        cache.put(_rrset("b.com"), now=1)
        cache.put(_rrset("c.com"), now=2)
        assert len(cache) == 2
        # Oldest insertion (a.com) evicted.
        assert cache.get("a.com", RRType.A, now=3) is None
        assert cache.get("c.com", RRType.A, now=3) is not None

    def test_overwrite_same_key_no_evict(self):
        cache = DnsCache(max_entries=1)
        cache.put(_rrset("a.com"), now=0)
        cache.put(_rrset("a.com"), now=5)
        assert len(cache) == 1
        assert cache.remaining_ttl("a.com", RRType.A, now=5) == 300

    def test_flush(self):
        cache = DnsCache()
        cache.put(_rrset(), now=0)
        cache.flush()
        assert len(cache) == 0

    def test_purge_expired(self):
        cache = DnsCache()
        cache.put(_rrset("a.com", ttl=10), now=0)
        cache.put(_rrset("b.com", ttl=1000), now=0)
        assert cache.purge_expired(now=500) == 1
        assert len(cache) == 1

    def test_hit_rate(self):
        cache = DnsCache()
        cache.put(_rrset(), now=0)
        cache.get("example.com", RRType.A, now=1)
        cache.get("other.com", RRType.A, now=1)
        assert cache.hit_rate == 0.5

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            DnsCache(max_entries=0)

    def test_key_includes_type(self):
        cache = DnsCache()
        cache.put(_rrset(), now=0)
        assert cache.get("example.com", RRType.NS, now=0) is None
