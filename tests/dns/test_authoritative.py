"""Tests for the authoritative server engine (RFC 1034 answering)."""

import pytest

from repro.dns.authoritative import (
    CLASSIC_UDP_LIMIT,
    AuthoritativeServer,
    response_size,
)
from repro.dns.message import Edns, Message
from repro.dns.name import DomainName
from repro.dns.rcode import Rcode
from repro.dns.rr import RRType
from repro.dns.zone import Zone
from repro.net.ip import parse_ip


@pytest.fixture()
def server():
    zone = Zone("example.com")
    zone.set_ns(["ns1.example.com", "ns2.example.com"])
    zone.add_record("example.com", RRType.A, "192.0.2.1")
    zone.add_record("example.com", RRType.TXT, "hello world")
    zone.add_record("ns1.example.com", RRType.A, "192.0.2.53")
    zone.add_record("www.example.com", RRType.CNAME, "example.com")
    zone.add_record("alias.example.com", RRType.CNAME, "www.example.com")
    zone.add_record("external.example.com", RRType.CNAME, "target.other.net")
    zone.add_record("sub.example.com", RRType.NS, "ns1.sub.example.com")
    zone.add_record("ns1.sub.example.com", RRType.A, "192.0.2.99")
    srv = AuthoritativeServer()
    srv.add_zone(zone, signed=True)
    return srv


def query(qname, qtype=RRType.A, edns=None, msg_id=1):
    q = Message.query(qname, qtype, msg_id=msg_id)
    q.edns = edns
    return q


class TestAnswering:
    def test_authoritative_answer(self, server):
        response = server.handle_query(query("example.com"))
        assert response.flags.aa
        assert response.flags.rcode == Rcode.NOERROR
        assert response.answers[0].rdata == parse_ip("192.0.2.1")

    def test_case_insensitive(self, server):
        response = server.handle_query(query("EXAMPLE.COM"))
        assert response.answers

    def test_nxdomain_carries_soa(self, server):
        response = server.handle_query(query("missing.example.com"))
        assert response.flags.rcode == Rcode.NXDOMAIN
        assert response.authorities[0].rtype == RRType.SOA

    def test_nodata_carries_soa(self, server):
        response = server.handle_query(query("example.com", RRType.AAAA))
        assert response.flags.rcode == Rcode.NOERROR
        assert not response.answers
        assert response.authorities[0].rtype == RRType.SOA

    def test_refused_outside_zones(self, server):
        response = server.handle_query(query("other.net"))
        assert response.flags.rcode == Rcode.REFUSED
        assert not response.flags.aa

    def test_cname_chase_in_zone(self, server):
        response = server.handle_query(query("www.example.com"))
        types = [rr.rtype for rr in response.answers]
        assert RRType.CNAME in types and RRType.A in types

    def test_cname_chain(self, server):
        response = server.handle_query(query("alias.example.com"))
        cnames = [rr for rr in response.answers if rr.rtype == RRType.CNAME]
        assert len(cnames) == 2
        assert any(rr.rtype == RRType.A for rr in response.answers)

    def test_cname_out_of_zone_stops(self, server):
        response = server.handle_query(query("external.example.com"))
        assert response.answers[-1].rtype == RRType.CNAME
        assert not any(rr.rtype == RRType.A for rr in response.answers)

    def test_cname_query_returns_cname_itself(self, server):
        response = server.handle_query(query("www.example.com", RRType.CNAME))
        assert len(response.answers) == 1
        assert response.answers[0].rtype == RRType.CNAME

    def test_referral_not_authoritative(self, server):
        response = server.handle_query(query("deep.sub.example.com"))
        assert not response.flags.aa
        assert response.authorities[0].rtype == RRType.NS
        # Glue for the in-zone nameserver host.
        assert response.additionals[0].rdata == parse_ip("192.0.2.99")

    def test_formerr_without_question(self, server):
        empty = Message(msg_id=5)
        assert server.handle_query(empty).flags.rcode == Rcode.FORMERR

    def test_query_counter(self, server):
        before = server.queries_served
        server.handle_query(query("example.com"))
        assert server.queries_served == before + 1

    def test_most_specific_zone_wins(self, server):
        child = Zone("sub2.example.com")
        child.add_record("sub2.example.com", RRType.A, "203.0.113.5")
        server.add_zone(child)
        response = server.handle_query(query("sub2.example.com"))
        assert response.answers[0].rdata == parse_ip("203.0.113.5")

    def test_duplicate_zone_rejected(self, server):
        with pytest.raises(ValueError):
            server.add_zone(Zone("example.com"))


class TestDnssecAndTruncation:
    def test_rrsig_attached_when_do_set(self, server):
        response = server.handle_query(
            query("example.com", edns=Edns(do=True)))
        types = [rr.rtype for rr in response.answers]
        assert RRType.RRSIG in types

    def test_no_rrsig_without_do(self, server):
        response = server.handle_query(query("example.com", edns=Edns()))
        assert RRType.RRSIG not in [rr.rtype for rr in response.answers]

    def test_no_rrsig_for_unsigned_zone(self):
        zone = Zone("plain.org")
        zone.add_record("plain.org", RRType.A, "192.0.2.7")
        srv = AuthoritativeServer()
        srv.add_zone(zone, signed=False)
        response = srv.handle_query(query("plain.org", edns=Edns(do=True)))
        assert RRType.RRSIG not in [rr.rtype for rr in response.answers]

    def test_signed_response_larger(self, server):
        plain = server.handle_query(query("example.com", edns=Edns()))
        signed = server.handle_query(query("example.com", edns=Edns(do=True)))
        assert response_size(signed) > response_size(plain) + 200

    def test_truncation_under_classic_limit(self, server):
        # DNSSEC answer (~350+ bytes) with only the classic 512-byte
        # budget minus a tight EDNS limit: force TC by querying without
        # EDNS (the server still signs nothing then) — instead pad the
        # zone with many records.
        zone = Zone("big.org")
        for i in range(60):
            zone.add_record("big.org", RRType.A, 0x0A000000 + i)
        srv = AuthoritativeServer()
        srv.add_zone(zone)
        response = srv.handle_query(query("big.org"))
        assert response.flags.tc
        assert not response.answers

    def test_tcp_never_truncates(self, server):
        zone = Zone("big2.org")
        for i in range(60):
            zone.add_record("big2.org", RRType.A, 0x0A000000 + i)
        srv = AuthoritativeServer()
        srv.add_zone(zone)
        response = srv.handle_query(query("big2.org"), tcp=True)
        assert not response.flags.tc
        assert len(response.answers) == 60

    def test_edns_raises_udp_budget(self, server):
        zone = Zone("big3.org")
        for i in range(60):
            zone.add_record("big3.org", RRType.A, 0x0A000000 + i)
        srv = AuthoritativeServer()
        srv.add_zone(zone)
        response = srv.handle_query(
            query("big3.org", edns=Edns(udp_payload_size=4096)))
        assert not response.flags.tc
        assert len(response.answers) == 60

    def test_response_echoes_edns(self, server):
        response = server.handle_query(query("example.com", edns=Edns(do=True)))
        assert response.edns is not None

    def test_dnskey_rrset(self, server):
        rrset = server.dnskey_rrset("example.com")
        assert len(rrset) == 2
        seps = [rr for rr in rrset if rr.rdata.is_sep]
        assert len(seps) == 1

    def test_dnskey_requires_signed(self):
        srv = AuthoritativeServer()
        srv.add_zone(Zone("plain.org"))
        with pytest.raises(ValueError):
            srv.dnskey_rrset("plain.org")
