"""Tests for EDNS0 (OPT), RRSIG and DNSKEY wire handling."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.message import Edns, Message, WireError, decode_message, encode_message
from repro.dns.name import DomainName
from repro.dns.rr import DnskeyData, RRType, ResourceRecord, RrsigData


def rrsig(signer="example.com", signature=b"s" * 64):
    return RrsigData(type_covered=int(RRType.A), algorithm=8, labels=2,
                     original_ttl=300, expiration=2_000_000_000,
                     inception=1_600_000_000, key_tag=12345,
                     signer=signer, signature=signature)


class TestEdns:
    def test_defaults(self):
        edns = Edns()
        assert edns.udp_payload_size == 1232
        assert not edns.do

    def test_validation(self):
        with pytest.raises(ValueError):
            Edns(udp_payload_size=100)
        with pytest.raises(ValueError):
            Edns(extended_rcode=300)

    def test_ttl_field_do_bit(self):
        assert Edns(do=True).ttl_field() & (1 << 15)
        assert not Edns(do=False).ttl_field() & (1 << 15)

    @given(st.integers(min_value=512, max_value=0xFFFF), st.booleans(),
           st.integers(min_value=0, max_value=255))
    def test_wire_fields_roundtrip(self, size, do, version):
        edns = Edns(udp_payload_size=size, do=do, version=version)
        back = Edns.from_wire_fields(size, edns.ttl_field(), b"")
        assert back == edns

    def test_message_roundtrip(self):
        msg = Message.query("example.com", RRType.A, msg_id=3)
        msg.edns = Edns(udp_payload_size=4096, do=True, options=b"\x01\x02")
        decoded = decode_message(encode_message(msg))
        assert decoded.edns == msg.edns
        assert decoded.additionals == []  # OPT is not a visible additional

    def test_max_udp_payload(self):
        msg = Message.query("example.com", RRType.A)
        assert msg.max_udp_payload == 512
        msg.edns = Edns(udp_payload_size=1232)
        assert msg.max_udp_payload == 1232

    def test_duplicate_opt_rejected(self):
        msg = Message.query("example.com", RRType.A, msg_id=1)
        msg.edns = Edns()
        wire = bytearray(encode_message(msg))
        # Bump ARCOUNT and append a second OPT record verbatim.
        opt = wire[-11:]
        wire[10:12] = (2).to_bytes(2, "big")
        wire += opt
        with pytest.raises(WireError):
            decode_message(bytes(wire))

    def test_opt_with_nonroot_owner_rejected(self):
        msg = Message.query("example.com", RRType.A, msg_id=1)
        msg.edns = Edns()
        wire = bytearray(encode_message(msg))
        # The OPT owner byte is the 11th-from-last octet (root label).
        # Overwrite it with a bogus 1-octet label marker to corrupt it.
        wire[-11] = 1
        with pytest.raises(WireError):
            decode_message(bytes(wire))


class TestRrsig:
    def test_requires_signature(self):
        with pytest.raises(ValueError):
            rrsig(signature=b"")

    def test_roundtrip(self):
        msg = Message(msg_id=1)
        msg.answers.append(ResourceRecord("example.com", RRType.RRSIG,
                                          rrsig()))
        decoded = decode_message(encode_message(msg))
        got = decoded.answers[0].rdata
        assert got == rrsig()

    def test_signer_name_preserved(self):
        data = rrsig(signer="keys.example.com")
        msg = Message(msg_id=1)
        msg.answers.append(ResourceRecord("example.com", RRType.RRSIG, data))
        decoded = decode_message(encode_message(msg))
        assert decoded.answers[0].rdata.signer == \
            DomainName("keys.example.com")

    def test_rdata_text(self):
        rr = ResourceRecord("example.com", RRType.RRSIG, rrsig())
        text = rr.rdata_text()
        assert "A" in text and "12345" in text

    def test_type_enforced(self):
        with pytest.raises(TypeError):
            ResourceRecord("example.com", RRType.RRSIG, b"junk")


class TestDnskey:
    def test_flags(self):
        zsk = DnskeyData(DnskeyData.ZONE_KEY_FLAG, 3, 8, b"k" * 32)
        ksk = DnskeyData(DnskeyData.ZONE_KEY_FLAG | DnskeyData.SEP_FLAG,
                         3, 8, b"k" * 32)
        assert zsk.is_zone_key and not zsk.is_sep
        assert ksk.is_sep

    def test_requires_key(self):
        with pytest.raises(ValueError):
            DnskeyData(0, 3, 8, b"")

    def test_roundtrip(self):
        key = DnskeyData(0x0101, 3, 13, bytes(range(64)))
        msg = Message(msg_id=1)
        msg.answers.append(ResourceRecord("example.com", RRType.DNSKEY, key))
        decoded = decode_message(encode_message(msg))
        assert decoded.answers[0].rdata == key

    def test_rdata_text_distinguishes_kinds(self):
        ksk = ResourceRecord("example.com", RRType.DNSKEY,
                             DnskeyData(0x0101, 3, 8, b"k"))
        zsk = ResourceRecord("example.com", RRType.DNSKEY,
                             DnskeyData(0x0100, 3, 8, b"k"))
        assert "KSK" in ksk.rdata_text()
        assert "ZSK" in zsk.rdata_text()
