"""Tests for the master-file (zone file) codec."""

import io

import pytest

from repro.dns.name import DomainName
from repro.dns.rr import RRType
from repro.dns.zone import Zone
from repro.dns.zonefile import ZoneFileError, dump_zone_file, parse_zone_file
from repro.net.ip import parse_ip

SAMPLE = """\
$ORIGIN example.com.
$TTL 3600
@   IN SOA ns1.example.com. hostmaster.example.com. (
        2022010101 ; serial
        7200       ; refresh
        900        ; retry
        1209600    ; expire
        3600 )     ; minimum
@       IN NS  ns1.example.com.
@       IN NS  ns2
ns1     IN A   192.0.2.53
ns2 600 IN A   192.0.2.54
www     IN CNAME @
        IN TXT "v=spf1 -all"
mail    IN AAAA 2001:db8::25
"""


@pytest.fixture()
def zone():
    return parse_zone_file(io.StringIO(SAMPLE))


class TestParsing:
    def test_apex_and_soa(self, zone):
        assert zone.apex == DomainName("example.com")
        assert zone.soa.serial == 2022010101
        assert zone.soa.mname == DomainName("ns1.example.com")
        assert zone.soa.minimum == 3600

    def test_relative_and_absolute_names(self, zone):
        assert zone.get_rrset("ns1.example.com", RRType.A) is not None
        ns = zone.get_rrset("example.com", RRType.NS)
        hosts = {str(rr.rdata) for rr in ns}
        assert hosts == {"ns1.example.com", "ns2.example.com"}

    def test_explicit_ttl(self, zone):
        rrset = zone.get_rrset("ns2.example.com", RRType.A)
        assert rrset.records[0].ttl == 600

    def test_default_ttl_applies(self, zone):
        rrset = zone.get_rrset("ns1.example.com", RRType.A)
        assert rrset.records[0].ttl == 3600

    def test_at_sign_is_origin(self, zone):
        cname = zone.get_rrset("www.example.com", RRType.CNAME)
        assert cname.records[0].rdata == DomainName("example.com")

    def test_blank_owner_continuation(self, zone):
        txt = zone.get_rrset("www.example.com", RRType.TXT)
        assert txt.records[0].rdata == b"v=spf1 -all"

    def test_aaaa(self, zone):
        rrset = zone.get_rrset("mail.example.com", RRType.AAAA)
        assert rrset.records[0].rdata == (
            b"\x20\x01\x0d\xb8" + b"\x00" * 10 + b"\x00\x25")

    def test_comments_stripped(self, zone):
        # The serial's inline comment did not corrupt parsing.
        assert zone.soa.refresh == 7200

    def test_origin_argument(self):
        text = "@ IN SOA ns1 root 1 2 3 4 5\n@ IN A 192.0.2.1\n"
        zone = parse_zone_file(io.StringIO(text), origin="test.org")
        assert zone.apex == DomainName("test.org")


class TestErrors:
    @pytest.mark.parametrize("text,message", [
        ("$ORIGIN e.com.\n@ IN A 192.0.2.1\n", "no SOA"),
        ("$ORIGIN example.com.\n@ IN SOA ns1 root 1 2 3 4\n", "5 integers"),
        ("$ORIGIN e.com.\n@ IN SOA ns1 root 1 2 3 4 5\nx IN FOO bar\n",
         "unsupported type"),
        ("$BOGUS x\n", "unsupported directive"),
        ("$ORIGIN e.com.\n@ IN SOA ns1 root 1 2 3 4 5 (\n", "unbalanced"),
        ("  IN A 192.0.2.1\n", "continuation without"),
        ("www IN A 1.2.3.4\n", "without $ORIGIN"),
    ])
    def test_rejects(self, text, message):
        with pytest.raises(ZoneFileError) as excinfo:
            parse_zone_file(io.StringIO(text))
        assert message in str(excinfo.value)

    def test_ttl_directive_validation(self):
        with pytest.raises(ZoneFileError):
            parse_zone_file(io.StringIO("$TTL abc\n"))

    def test_bad_ipv6(self):
        text = ("$ORIGIN e.com.\n@ IN SOA ns1 root 1 2 3 4 5\n"
                "x IN AAAA zz::1::2\n")
        with pytest.raises(ZoneFileError):
            parse_zone_file(io.StringIO(text))


class TestRoundtrip:
    def test_dump_parse_roundtrip(self, zone):
        buf = io.StringIO()
        dump_zone_file(zone, buf)
        buf.seek(0)
        again = parse_zone_file(buf)
        assert again.apex == zone.apex
        assert again.soa.serial == zone.soa.serial
        for name in zone.names():
            for rtype in (RRType.A, RRType.NS, RRType.CNAME, RRType.TXT,
                          RRType.AAAA):
                original = zone.get_rrset(name, rtype)
                copied = again.get_rrset(name, rtype)
                if original is None:
                    assert copied is None
                else:
                    assert copied is not None
                    assert set(original.rdatas()) == set(copied.rdatas())

    def test_generated_zone_dumps(self):
        zone = Zone("generated.test")
        zone.set_ns(["ns1.generated.test"])
        zone.add_record("ns1.generated.test", RRType.A, "203.0.113.1")
        buf = io.StringIO()
        dump_zone_file(zone, buf)
        text = buf.getvalue()
        assert "$ORIGIN generated.test." in text
        assert "203.0.113.1" in text

    def test_roundtrip_feeds_authoritative_server(self, zone):
        # A parsed zone plugs straight into the server engine.
        from repro.dns.authoritative import AuthoritativeServer
        from repro.dns.message import Message

        server = AuthoritativeServer()
        server.add_zone(zone)
        response = server.handle_query(
            Message.query("ns1.example.com", RRType.A, msg_id=1))
        assert response.answers[0].rdata == parse_ip("192.0.2.53")
