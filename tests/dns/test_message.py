"""Wire-codec tests including hypothesis roundtrips and malformed input."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dns.message import (
    Flags,
    Message,
    Opcode,
    Question,
    WireError,
    decode_message,
    encode_message,
)
from repro.dns.name import DomainName
from repro.dns.rcode import Rcode
from repro.dns.rr import RRType, ResourceRecord, SoaData

LABEL = st.from_regex(r"[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?", fullmatch=True)
NAME = st.lists(LABEL, min_size=1, max_size=4).map(
    lambda labels: DomainName(tuple(labels)))
IP = st.integers(min_value=0, max_value=2 ** 32 - 1)


def a_record(name, ip, ttl=300):
    return ResourceRecord(name, RRType.A, ip, ttl)


class TestFlags:
    @given(st.booleans(), st.booleans(), st.booleans(), st.booleans(),
           st.booleans(), st.sampled_from(list(Rcode)))
    def test_roundtrip(self, qr, aa, tc, rd, ra, rcode):
        flags = Flags(qr=qr, aa=aa, tc=tc, rd=rd, ra=ra, rcode=rcode)
        assert Flags.from_int(flags.to_int()) == flags

    def test_known_value(self):
        # Standard query with RD: 0x0100.
        assert Flags(rd=True).to_int() == 0x0100


class TestHeaderValidation:
    def test_rejects_bad_id(self):
        with pytest.raises(ValueError):
            Message(msg_id=70000)


class TestEncodeDecode:
    def test_query_roundtrip(self):
        msg = Message.query("www.example.com", RRType.NS, msg_id=1234)
        decoded = decode_message(encode_message(msg))
        assert decoded.msg_id == 1234
        assert decoded.questions == [Question(DomainName("www.example.com"),
                                              RRType.NS)]
        assert not decoded.flags.qr

    def test_response_roundtrip_with_answers(self):
        query = Message.query("example.com", RRType.A, msg_id=7)
        response = query.response()
        response.answers.append(a_record(DomainName("example.com"), 0x01020304))
        decoded = decode_message(encode_message(response))
        assert decoded.flags.qr and decoded.flags.aa
        assert decoded.answers[0].rdata == 0x01020304

    def test_ns_rdata_roundtrip(self):
        msg = Message(msg_id=1)
        msg.answers.append(ResourceRecord("example.com", RRType.NS,
                                          "ns1.example.com"))
        decoded = decode_message(encode_message(msg))
        assert decoded.answers[0].rdata == DomainName("ns1.example.com")

    def test_soa_roundtrip(self):
        soa = SoaData(DomainName("ns1.example.com"),
                      DomainName("hostmaster.example.com"),
                      serial=2022, refresh=1, retry=2, expire=3, minimum=4)
        msg = Message(msg_id=1)
        msg.authorities.append(ResourceRecord("example.com", RRType.SOA, soa))
        decoded = decode_message(encode_message(msg))
        assert decoded.authorities[0].rdata == soa

    def test_txt_roundtrip(self):
        msg = Message(msg_id=1)
        msg.answers.append(ResourceRecord("example.com", RRType.TXT,
                                          b"x" * 300))
        decoded = decode_message(encode_message(msg))
        assert decoded.answers[0].rdata == b"x" * 300

    def test_aaaa_roundtrip(self):
        msg = Message(msg_id=1)
        msg.answers.append(ResourceRecord("example.com", RRType.AAAA,
                                          bytes(range(16))))
        decoded = decode_message(encode_message(msg))
        assert decoded.answers[0].rdata == bytes(range(16))

    def test_compression_shrinks_repeated_names(self):
        msg = Message(msg_id=1)
        for i in range(5):
            msg.answers.append(a_record(DomainName("host.example.com"), i))
        wire = encode_message(msg)
        # Without compression each name costs 17 bytes; with pointers the
        # repeats cost 2. 5 names -> well under 5*17 + overhead.
        uncompressed_names = 5 * 17
        assert len(wire) < 12 + uncompressed_names + 5 * 14

    def test_compression_across_sections(self):
        msg = Message.query("example.com", RRType.A, msg_id=1)
        response = msg.response()
        response.answers.append(a_record(DomainName("example.com"), 1))
        decoded = decode_message(encode_message(response))
        assert decoded.answers[0].name == DomainName("example.com")

    def test_root_name(self):
        msg = Message(msg_id=1, questions=[Question(DomainName(""), RRType.NS)])
        decoded = decode_message(encode_message(msg))
        assert decoded.questions[0].qname.is_root

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 0xFFFF),
           st.lists(st.tuples(NAME, IP), max_size=6),
           st.lists(st.tuples(NAME, IP), max_size=3))
    def test_property_roundtrip(self, msg_id, answers, additionals):
        msg = Message(msg_id=msg_id, flags=Flags(qr=True))
        msg.questions.append(Question(DomainName("q.example.com"), RRType.NS))
        for name, ip in answers:
            msg.answers.append(a_record(name, ip))
        for name, ip in additionals:
            msg.additionals.append(a_record(name, ip))
        decoded = decode_message(encode_message(msg))
        assert decoded.msg_id == msg.msg_id
        assert decoded.questions == msg.questions
        assert [(r.name, r.rdata) for r in decoded.answers] == \
            [(r.name, r.rdata) for r in msg.answers]
        assert [(r.name, r.rdata) for r in decoded.additionals] == \
            [(r.name, r.rdata) for r in msg.additionals]


class TestMalformedInput:
    def test_truncated_header(self):
        with pytest.raises(WireError):
            decode_message(b"\x00\x01")

    def test_truncated_question(self):
        msg = Message.query("example.com", RRType.A, msg_id=1)
        wire = encode_message(msg)
        with pytest.raises(WireError):
            decode_message(wire[:-3])

    def test_trailing_bytes(self):
        wire = encode_message(Message.query("example.com", RRType.A, msg_id=1))
        with pytest.raises(WireError):
            decode_message(wire + b"\x00")

    def test_pointer_loop(self):
        # Header + a name that points at itself.
        header = (1).to_bytes(2, "big") + b"\x00\x00" + b"\x00\x01" + b"\x00" * 6
        evil = header + b"\xc0\x0c" + b"\x00\x01\x00\x01"
        with pytest.raises(WireError):
            decode_message(evil)

    def test_forward_pointer_rejected(self):
        header = (1).to_bytes(2, "big") + b"\x00\x00" + b"\x00\x01" + b"\x00" * 6
        evil = header + b"\xc0\x20" + b"\x00\x01\x00\x01"
        with pytest.raises(WireError):
            decode_message(evil)

    def test_bad_label_length_bits(self):
        header = (1).to_bytes(2, "big") + b"\x00\x00" + b"\x00\x01" + b"\x00" * 6
        evil = header + b"\x80abc\x00" + b"\x00\x01\x00\x01"
        with pytest.raises(WireError):
            decode_message(evil)

    @given(st.binary(max_size=64))
    def test_fuzz_never_crashes_unexpectedly(self, blob):
        try:
            decode_message(blob)
        except WireError:
            pass  # the only acceptable failure mode


class TestMessageHelpers:
    def test_query_defaults_non_recursive(self):
        # OpenINTEL sends explicit (non-recursive) NS queries.
        assert not Message.query("example.com", RRType.NS).flags.rd

    def test_response_echoes_question(self):
        query = Message.query("example.com", RRType.NS, msg_id=9)
        response = query.response(rcode=Rcode.SERVFAIL)
        assert response.msg_id == 9
        assert response.flags.rcode == Rcode.SERVFAIL
        assert response.questions == query.questions

    def test_to_wire_alias(self):
        msg = Message.query("example.com", RRType.A, msg_id=5)
        assert msg.to_wire() == encode_message(msg)
