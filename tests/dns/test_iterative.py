"""Tests for the iterative resolver over an in-memory DNS hierarchy."""

import pytest

from repro.dns.authoritative import AuthoritativeServer
from repro.dns.cache import DnsCache
from repro.dns.iterative import DnsUniverse, IterativeResolver
from repro.dns.name import DomainName
from repro.dns.rcode import ResponseStatus
from repro.dns.rr import RRType
from repro.dns.zone import Zone
from repro.net.ip import parse_ip

ROOT_IP = parse_ip("198.41.0.4")
COM_IP = parse_ip("192.5.6.30")
EXAMPLE_IP = parse_ip("203.0.113.53")


@pytest.fixture()
def universe():
    # Root zone: delegates com. to the com server.
    root_zone = Zone("")
    root_zone.add_record("com", RRType.NS, "a.gtld-servers.net")
    root_zone.add_record("a.gtld-servers.net", RRType.A, COM_IP)
    root = AuthoritativeServer()
    root.add_zone(root_zone)

    # com zone: delegates example.com to its nameserver.
    com_zone = Zone("com")
    com_zone.add_record("example.com", RRType.NS, "ns1.example.com")
    com_zone.add_record("ns1.example.com", RRType.A, EXAMPLE_IP)
    com = AuthoritativeServer()
    com.add_zone(com_zone)

    # example.com zone.
    example_zone = Zone("example.com")
    example_zone.set_ns(["ns1.example.com"])
    example_zone.add_record("example.com", RRType.A, "192.0.2.80")
    example_zone.add_record("www.example.com", RRType.CNAME, "example.com")
    for i in range(60):  # bulk name to force UDP truncation
        example_zone.add_record("bulk.example.com", RRType.A, 0x0A000000 + i)
    example = AuthoritativeServer()
    example.add_zone(example_zone)

    universe = DnsUniverse()
    universe.place_server(ROOT_IP, root, is_root=True)
    universe.place_server(COM_IP, com)
    universe.place_server(EXAMPLE_IP, example)
    return universe


class TestIterativeResolution:
    def test_walks_from_root(self, universe):
        resolver = IterativeResolver(universe)
        result = resolver.resolve("example.com")
        assert result.status is ResponseStatus.OK
        assert parse_ip("192.0.2.80") in result.rdatas()
        # root -> com -> example.com
        assert result.trace.referrals_followed == 2
        assert result.trace.servers_contacted == [ROOT_IP, COM_IP, EXAMPLE_IP]

    def test_cname_restart(self, universe):
        resolver = IterativeResolver(universe)
        result = resolver.resolve("www.example.com")
        assert result.status is ResponseStatus.OK
        types = {rr.rtype for rr in result.answers}
        assert RRType.CNAME in types and RRType.A in types

    def test_nxdomain(self, universe):
        resolver = IterativeResolver(universe)
        result = resolver.resolve("missing.example.com")
        assert result.status is ResponseStatus.NXDOMAIN

    def test_unknown_tld_nxdomain(self, universe):
        resolver = IterativeResolver(universe)
        assert resolver.resolve("anything.zz").status is ResponseStatus.NXDOMAIN

    def test_tcp_fallback_on_truncation(self, universe):
        # Without EDNS the 60-record answer exceeds 512 bytes.
        resolver = IterativeResolver(universe, use_edns=False)
        result = resolver.resolve("bulk.example.com")
        assert result.status is ResponseStatus.OK
        assert len(result.answers) == 60
        assert result.trace.tcp_retries == 1

    def test_edns_avoids_tcp(self, universe):
        resolver = IterativeResolver(universe, udp_payload_size=4096)
        result = resolver.resolve("bulk.example.com")
        assert result.status is ResponseStatus.OK
        assert result.trace.tcp_retries == 0

    def test_dead_root_times_out(self, universe):
        broken = DnsUniverse()
        broken.root_hints.append(parse_ip("198.51.100.1"))
        resolver = IterativeResolver(broken)
        assert resolver.resolve("example.com").status is ResponseStatus.TIMEOUT

    def test_requires_root_hints(self):
        with pytest.raises(ValueError):
            IterativeResolver(DnsUniverse())

    def test_cache_short_circuits(self, universe):
        cache = DnsCache()
        resolver = IterativeResolver(universe, cache=cache)
        first = resolver.resolve("example.com", now=0)
        assert first.trace.queries_sent > 0
        second = resolver.resolve("example.com", now=10)
        assert second.status is ResponseStatus.OK
        assert second.trace.queries_sent == 0

    def test_cache_expires(self, universe):
        cache = DnsCache()
        resolver = IterativeResolver(universe, cache=cache)
        resolver.resolve("example.com", now=0)
        later = resolver.resolve("example.com", now=100_000)
        assert later.trace.queries_sent > 0

    def test_referral_bound(self, universe):
        resolver = IterativeResolver(universe, max_referrals=1)
        result = resolver.resolve("example.com")
        assert result.status is ResponseStatus.SERVFAIL

    def test_universe_accessors(self, universe):
        assert len(universe) == 3
        assert universe.server_at(ROOT_IP) is not None
        assert universe.server_at("8.8.8.8") is None
