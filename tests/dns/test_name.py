"""Tests for domain names."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.name import DomainName, is_valid_hostname, sort_names

LABEL = st.from_regex(r"[a-z0-9]([a-z0-9-]{0,20}[a-z0-9])?", fullmatch=True)
NAMES = st.lists(LABEL, min_size=1, max_size=5).map(tuple)


class TestConstruction:
    def test_lowercases(self):
        assert DomainName("WWW.Example.COM").labels == ("www", "example", "com")

    def test_strips_trailing_dot(self):
        assert DomainName("example.com.") == DomainName("example.com")

    def test_root(self):
        root = DomainName("")
        assert root.is_root
        assert root.to_text() == "."

    def test_from_labels(self):
        assert DomainName(("a", "b")).to_text() == "a.b"

    def test_from_domainname(self):
        name = DomainName("example.com")
        assert DomainName(name) == name

    def test_idn_encodes_to_ace(self):
        name = DomainName("минобороны.рф")
        assert all(l.isascii() for l in name.labels)
        assert name.labels[-1].startswith("xn--")

    def test_mil_ru_cyrillic_twin_differs(self):
        assert DomainName("mil.ru") != DomainName("минобороны.рф")

    def test_rejects_empty_label(self):
        with pytest.raises(ValueError):
            DomainName("a..b")

    def test_rejects_long_label(self):
        with pytest.raises(ValueError):
            DomainName("a" * 64 + ".com")

    def test_rejects_long_name(self):
        label = "a" * 60
        with pytest.raises(ValueError):
            DomainName(".".join([label] * 5))

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            DomainName(42)

    def test_immutable(self):
        name = DomainName("example.com")
        with pytest.raises(AttributeError):
            name.labels = ()


class TestHierarchy:
    def test_tld(self):
        assert DomainName("www.example.com").tld == "com"
        assert DomainName("").tld is None

    def test_parent(self):
        assert DomainName("www.example.com").parent == DomainName("example.com")

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            _ = DomainName("").parent

    def test_is_subdomain_of(self):
        assert DomainName("a.b.example.com").is_subdomain_of("example.com")
        assert DomainName("example.com").is_subdomain_of("example.com")
        assert not DomainName("example.com").is_subdomain_of("other.com")
        assert not DomainName("badexample.com").is_subdomain_of("example.com")

    def test_everything_under_root(self):
        assert DomainName("x.y").is_subdomain_of("")

    def test_registered_domain(self):
        assert DomainName("a.b.example.com").registered_domain() == \
            DomainName("example.com")

    def test_registered_domain_two_label_suffix(self):
        assert DomainName("www.example.co.uk").registered_domain(2) == \
            DomainName("example.co.uk")

    def test_registered_domain_too_shallow(self):
        with pytest.raises(ValueError):
            DomainName("com").registered_domain()

    def test_relativize(self):
        rel = DomainName("a.b.example.com").relativize("example.com")
        assert rel == ("a", "b")

    def test_relativize_rejects_unrelated(self):
        with pytest.raises(ValueError):
            DomainName("a.com").relativize("b.com")

    def test_child(self):
        assert DomainName("example.com").child("ns1") == \
            DomainName("ns1.example.com")


class TestIdentity:
    def test_eq_string(self):
        assert DomainName("Example.COM") == "example.com"

    def test_eq_invalid_string_is_false(self):
        assert DomainName("example.com") != "a" * 300

    def test_hashable(self):
        assert len({DomainName("a.com"), DomainName("A.com")}) == 1

    @given(NAMES)
    def test_roundtrip_text(self, labels):
        name = DomainName(labels)
        assert DomainName(name.to_text()) == name

    def test_ordering_by_reversed_labels(self):
        names = [DomainName("b.com"), DomainName("a.net"), DomainName("a.com")]
        ordered = sort_names(names)
        assert [n.to_text() for n in ordered] == ["a.com", "b.com", "a.net"]

    def test_len_and_depth(self):
        name = DomainName("a.b.c")
        assert len(name) == name.depth == 3


class TestHostnameValidation:
    @pytest.mark.parametrize("good", ["example.com", "ns1.example.com", "a.b"])
    def test_valid(self, good):
        assert is_valid_hostname(good)

    @pytest.mark.parametrize("bad", ["", "-bad.com", "bad-.com",
                                     "under_score.com", "a" * 300])
    def test_invalid(self, bad):
        assert not is_valid_hostname(bad)
