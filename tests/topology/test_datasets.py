"""Tests for prefix2AS and AS2Org datasets, including serialization."""

import io
import random

import pytest

from repro.net.asn import Organization
from repro.net.ip import IPv4Prefix, parse_ip
from repro.topology.as2org import AS2Org
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.prefix2as import Prefix2AS


@pytest.fixture(scope="module")
def gen():
    return generate_topology(random.Random(2), TopologyConfig(n_filler_orgs=10))


class TestPrefix2AS:
    def test_from_topology_lookup(self, gen):
        dataset = Prefix2AS.from_topology(gen.internet)
        google = gen.analog_as["Google"]
        ip = google.prefixes[0].network + 7
        assert dataset.lookup(ip) == google.number

    def test_unrouted_is_none(self, gen):
        dataset = Prefix2AS.from_topology(gen.internet)
        assert dataset.lookup(parse_ip("203.0.113.1")) is None

    def test_lookup_prefix_returns_match(self, gen):
        dataset = Prefix2AS.from_topology(gen.internet)
        google = gen.analog_as["Google"]
        prefix, asn = dataset.lookup_prefix(google.prefixes[0].network)
        assert asn == google.number
        assert prefix.contains_ip(google.prefixes[0].network)

    def test_len_matches_routes(self, gen):
        dataset = Prefix2AS.from_topology(gen.internet)
        assert len(dataset) == gen.internet.n_routes

    def test_rejects_bad_asn(self):
        with pytest.raises(ValueError):
            Prefix2AS().add(IPv4Prefix.parse("10.0.0.0/8"), 0)

    def test_dump_load_roundtrip(self, gen):
        dataset = Prefix2AS.from_topology(gen.internet)
        buf = io.StringIO()
        dataset.dump(buf)
        buf.seek(0)
        loaded = Prefix2AS.load(buf)
        assert len(loaded) == len(dataset)
        google = gen.analog_as["Google"]
        assert loaded.lookup(google.prefixes[0].network) == google.number

    def test_load_handles_moas(self):
        buf = io.StringIO("10.0.0.0\t8\t64512_64513\n")
        dataset = Prefix2AS.load(buf)
        assert dataset.lookup(parse_ip("10.1.1.1")) == 64512

    def test_load_skips_comments_and_blanks(self):
        buf = io.StringIO("# comment\n\n10.0.0.0\t8\t1\n")
        assert len(Prefix2AS.load(buf)) == 1

    def test_load_rejects_malformed(self):
        with pytest.raises(ValueError):
            Prefix2AS.load(io.StringIO("10.0.0.0 8 1\n"))


class TestAS2Org:
    def test_from_topology(self, gen):
        dataset = AS2Org.from_topology(gen.internet)
        google = gen.analog_as["Google"]
        assert dataset.name_of(google.number) == "Google"
        assert dataset.org_of(google.number).country == "US"

    def test_unknown_asn_fallback(self):
        dataset = AS2Org()
        assert dataset.name_of(65000) == "AS65000"
        assert dataset.org_of(65000) is None

    def test_siblings(self):
        dataset = AS2Org()
        org = Organization("o1", "Multi", "US")
        dataset.add(100, org)
        dataset.add(200, org)
        dataset.add(300, Organization("o2", "Other", "US"))
        assert dataset.siblings(100) == [100, 200]
        assert dataset.siblings(999) == [999]

    def test_contains(self, gen):
        dataset = AS2Org.from_topology(gen.internet)
        assert gen.analog_as["Google"].number in dataset

    def test_rejects_bad_asn(self):
        with pytest.raises(ValueError):
            AS2Org().add(0, Organization("o", "x"))

    def test_dump_load_roundtrip(self, gen):
        dataset = AS2Org.from_topology(gen.internet)
        buf = io.StringIO()
        dataset.dump(buf)
        buf.seek(0)
        loaded = AS2Org.load(buf)
        assert len(loaded) == len(dataset)
        google = gen.analog_as["Google"]
        assert loaded.name_of(google.number) == "Google"
        # Shared org objects are re-linked.
        assert loaded.org_of(google.number).org_id == \
            dataset.org_of(google.number).org_id

    def test_load_rejects_malformed(self):
        with pytest.raises(ValueError):
            AS2Org.load(io.StringIO('{"asn": "x"}\n'))

    def test_organizations_deduplicated(self):
        dataset = AS2Org()
        org = Organization("o1", "Multi", "US")
        dataset.add(1, org)
        dataset.add(2, org)
        assert len(dataset.organizations()) == 1
