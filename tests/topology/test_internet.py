"""Tests for the address plan and AS registry."""

import random

import pytest

from repro.net.ip import IPv4Prefix, parse_ip
from repro.topology.generator import ANALOG_ORGS, TopologyConfig, generate_topology
from repro.topology.internet import (
    TELESCOPE_SLASH9,
    TELESCOPE_SLASH10,
    AllocationError,
    InternetTopology,
    ReservedSpace,
)


class TestReservedSpace:
    def test_telescope_reserved(self):
        reserved = ReservedSpace()
        assert reserved.contains_ip(parse_ip("44.0.0.1"))
        assert reserved.contains_ip(parse_ip("44.128.0.1"))

    def test_rfc1918_reserved(self):
        reserved = ReservedSpace()
        assert reserved.contains_ip(parse_ip("10.1.2.3"))
        assert reserved.contains_ip(parse_ip("192.168.1.1"))

    def test_public_not_reserved(self):
        assert not ReservedSpace().contains_ip(parse_ip("8.8.8.8"))

    def test_covers_both_directions(self):
        reserved = ReservedSpace()
        assert reserved.covers(IPv4Prefix.parse("10.1.0.0/16"))   # inside
        assert reserved.covers(IPv4Prefix.parse("0.0.0.0/0"))     # contains


class TestInternetTopology:
    def _topology(self):
        internet = InternetTopology()
        org = internet.add_org("Acme", "US")
        return internet, internet.add_as(org)

    def test_allocate_announces(self):
        internet, asys = self._topology()
        prefix = internet.allocate(asys, 20)
        assert internet.origin_asn(prefix.network) == asys.number
        assert prefix in asys.prefixes

    def test_allocations_disjoint(self):
        internet, asys = self._topology()
        prefixes = [internet.allocate(asys, 22) for _ in range(50)]
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1:]:
                assert not a.contains_prefix(b) and not b.contains_prefix(a)

    def test_allocations_avoid_reserved(self):
        internet, asys = self._topology()
        reserved = ReservedSpace()
        for _ in range(100):
            prefix = internet.allocate(asys, 20)
            assert not reserved.covers(prefix)

    def test_announce_rejects_reserved(self):
        internet, asys = self._topology()
        with pytest.raises(AllocationError):
            internet.announce(asys, TELESCOPE_SLASH9)
        with pytest.raises(AllocationError):
            internet.announce(asys, IPv4Prefix.parse("10.0.0.0/8"))

    def test_announce_rejects_duplicate_different_origin(self):
        internet, asys = self._topology()
        other = internet.add_as(internet.add_org("Other"))
        prefix = internet.allocate(asys, 20)
        with pytest.raises(AllocationError):
            internet.announce(other, prefix)

    def test_explicit_announce_low_space(self):
        internet, asys = self._topology()
        prefix = IPv4Prefix.parse("8.8.8.0/24")
        internet.announce(asys, prefix)
        assert internet.origin_asn(parse_ip("8.8.8.8")) == asys.number

    def test_origin_lookup_longest_match(self):
        internet, asys = self._topology()
        other = internet.add_as(internet.add_org("Other"))
        internet.announce(asys, IPv4Prefix.parse("100.0.0.0/8"))
        internet.announce(other, IPv4Prefix.parse("100.1.0.0/16"))
        assert internet.origin_asn(parse_ip("100.1.2.3")) == other.number
        assert internet.origin_asn(parse_ip("100.2.2.3")) == asys.number

    def test_origin_org(self):
        internet, asys = self._topology()
        prefix = internet.allocate(asys, 24)
        assert internet.origin_org(prefix.network).name == "Acme"

    def test_duplicate_asn_rejected(self):
        internet, asys = self._topology()
        with pytest.raises(ValueError):
            internet.add_as(asys.org, number=asys.number)

    def test_duplicate_org_id_rejected(self):
        internet = InternetTopology()
        internet.add_org("A", org_id="x")
        with pytest.raises(ValueError):
            internet.add_org("B", org_id="x")

    def test_allocate_rejects_silly_lengths(self):
        internet, asys = self._topology()
        with pytest.raises(AllocationError):
            internet.allocate(asys, 4)
        with pytest.raises(AllocationError):
            internet.allocate(asys, 30)

    def test_routes_enumeration(self):
        internet, asys = self._topology()
        internet.allocate(asys, 20)
        internet.allocate(asys, 24)
        assert internet.n_routes == 2
        assert len(list(internet.routes())) == 2


class TestGenerateTopology:
    def test_analog_orgs_present(self):
        gen = generate_topology(random.Random(1), TopologyConfig(n_filler_orgs=5))
        for name, asn, country in ANALOG_ORGS:
            asys = gen.analog_as[name]
            assert asys.number == asn
            assert asys.org.country == country
            assert asys.prefixes  # has address space

    def test_filler_count(self):
        gen = generate_topology(random.Random(1), TopologyConfig(n_filler_orgs=20))
        assert len(gen.filler_as) >= 20

    def test_deterministic(self):
        a = generate_topology(random.Random(9), TopologyConfig(n_filler_orgs=10))
        b = generate_topology(random.Random(9), TopologyConfig(n_filler_orgs=10))
        assert [x.number for x in a.filler_as] == [x.number for x in b.filler_as]
        assert ([str(p) for x in a.filler_as for p in x.prefixes]
                == [str(p) for x in b.filler_as for p in x.prefixes])

    def test_no_analogs_config(self):
        gen = generate_topology(random.Random(1),
                                TopologyConfig(n_filler_orgs=3,
                                               include_analogs=False))
        assert not gen.analog_as

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TopologyConfig(n_filler_orgs=-1)
        with pytest.raises(ValueError):
            TopologyConfig(multi_as_org_fraction=2.0)
