"""Cross-process capture/merge: span grafting and labeled metric folds."""

import json

import pytest

from repro.obs import (
    CAPTURE_SCHEMA,
    RunTelemetry,
    capture_telemetry,
    merge_capture,
    span_from_dict,
)
from repro.obs.clock import FakeClock


def worker_telemetry(clock):
    """What a forked shard builds: its own registry + tracer over the
    parent's clock domain."""
    telemetry = RunTelemetry.create(clock=clock)
    with telemetry.tracer.span("crawl.shard", shard=1) as span:
        clock.advance(2.0)
        span.annotate(rows=42)
    telemetry.registry.counter("repro.crawl.rows").inc(42)
    telemetry.registry.gauge("repro.crawl.progress").set(1.0)
    telemetry.registry.histogram(
        "repro.crawl.rtt_ms", buckets=(1.0, 10.0)).observe(5.0)
    return telemetry


class TestCapture:
    def test_capture_is_json_serializable(self):
        clock = FakeClock()
        capture = capture_telemetry(worker_telemetry(clock))
        round_tripped = json.loads(json.dumps(capture))
        assert round_tripped["schema"] == CAPTURE_SCHEMA
        assert round_tripped["spans"][0]["name"] == "crawl.shard"
        assert round_tripped["metrics"]

    def test_capture_carries_run_identity(self):
        telemetry = worker_telemetry(FakeClock())
        capture = capture_telemetry(telemetry)
        assert capture["run_id"] == telemetry.run_id
        assert capture["started_at_utc"] == telemetry.started_at_utc
        assert capture["anchor_monotonic"] == telemetry.anchor_monotonic


class TestMerge:
    @pytest.fixture()
    def merged(self):
        clock = FakeClock()
        parent = RunTelemetry.create(clock=clock)
        with parent.tracer.span("study"):
            with parent.tracer.span("crawl"):
                capture = json.loads(json.dumps(
                    capture_telemetry(worker_telemetry(clock))))
                merge_capture(parent, capture, shard=3)
        return parent

    def test_shard_spans_graft_under_the_open_span(self, merged):
        study = merged.tracer.roots[0]
        crawl = study.children[0]
        shard_span = crawl.children[0]
        assert shard_span.name == "crawl.shard"
        assert shard_span.duration == pytest.approx(2.0)
        assert shard_span.meta["rows"] == 42

    def test_merge_labels_land_on_the_grafted_root(self, merged):
        shard_span = merged.tracer.roots[0].children[0].children[0]
        assert shard_span.meta["shard"] == 3

    def test_metrics_fold_with_the_extra_labels(self, merged):
        snap = merged.snapshot()["metrics"]
        assert snap["counters"]["repro.crawl.rows{shard=3}"] == 42
        assert snap["gauges"]["repro.crawl.progress{shard=3}"] == 1.0
        hist = snap["histograms"]["repro.crawl.rtt_ms{shard=3}"]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(5.0)

    def test_merge_into_closed_tracer_adds_a_root(self):
        clock = FakeClock()
        parent = RunTelemetry.create(clock=clock)
        capture = capture_telemetry(worker_telemetry(clock))
        merge_capture(parent, capture, shard=0)
        assert [r.name for r in parent.tracer.roots] == ["crawl.shard"]


class TestSpanFromDict:
    def test_reconstructs_nested_spans(self):
        clock = FakeClock()
        telemetry = RunTelemetry.create(clock=clock)
        with telemetry.tracer.span("outer"):
            clock.advance(1.0)
            with telemetry.tracer.span("inner", k="v"):
                clock.advance(2.0)
        original = telemetry.tracer.roots[0]
        rebuilt = span_from_dict(original.to_dict())
        assert rebuilt.name == "outer"
        assert rebuilt.duration == pytest.approx(original.duration)
        assert rebuilt.children[0].name == "inner"
        assert rebuilt.children[0].meta == {"k": "v"}
        assert rebuilt.to_dict() == original.to_dict()
