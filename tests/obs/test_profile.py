"""Per-phase resource profiling: the gauges and the zero-overhead-off
contract."""

import tracemalloc

import pytest

from repro.obs import PhaseProfiler, RunTelemetry
from repro.obs.profile import cpu_seconds, peak_rss_kb

GAUGE_FAMILIES = ("cpu_s", "peak_rss_kb", "net_alloc_kb", "peak_alloc_kb")


class TestHelpers:
    def test_cpu_seconds_is_monotonic(self):
        a = cpu_seconds()
        sum(i * i for i in range(200_000))
        assert cpu_seconds() >= a

    def test_peak_rss_is_positive_when_available(self):
        rss = peak_rss_kb()
        if rss is not None:
            assert rss > 1024  # a Python process is bigger than 1 MiB


class TestPhaseProfiler:
    @pytest.fixture()
    def registry(self):
        return RunTelemetry.create().registry

    def test_measure_publishes_every_gauge_family(self, registry):
        with PhaseProfiler(registry) as profiler:
            with profiler.measure("crawl"):
                blob = bytearray(256 * 1024)
                del blob
        gauges = registry.snapshot()["gauges"]
        for family in GAUGE_FAMILIES:
            assert f"repro.profile.{family}{{phase=crawl}}" in gauges
        assert gauges["repro.profile.peak_alloc_kb{phase=crawl}"] >= 256

    def test_remeasure_overwrites_not_accumulates(self, registry):
        with PhaseProfiler(registry) as profiler:
            with profiler.measure("join"):
                pass
            first = registry.snapshot()["gauges"][
                "repro.profile.cpu_s{phase=join}"]
            with profiler.measure("join"):
                pass
        second = registry.snapshot()["gauges"][
            "repro.profile.cpu_s{phase=join}"]
        # Last-run figures: the second measurement replaces the first
        # instead of summing into it (both are tiny wall slices).
        assert second < first + 1.0

    def test_exception_still_publishes(self, registry):
        with PhaseProfiler(registry) as profiler:
            with pytest.raises(RuntimeError):
                with profiler.measure("events"):
                    raise RuntimeError("boom")
        assert "repro.profile.cpu_s{phase=events}" in \
            registry.snapshot()["gauges"]

    def test_close_stops_tracemalloc_it_started(self, registry):
        assert not tracemalloc.is_tracing()
        profiler = PhaseProfiler(registry)
        assert tracemalloc.is_tracing()
        profiler.close()
        assert not tracemalloc.is_tracing()

    def test_close_leaves_foreign_tracemalloc_running(self, registry):
        tracemalloc.start()
        try:
            profiler = PhaseProfiler(registry)
            profiler.close()
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()


class TestZeroOverheadWhenDisabled:
    """Profiling off must mean *nothing* runs: no gauges, no tracing."""

    def test_unprofiled_study_has_no_profile_series(self, tiny_study):
        snap = tiny_study.telemetry.snapshot()
        assert not any(name.startswith("repro.profile.")
                       for name in snap["metrics"]["gauges"])

    def test_unprofiled_study_leaves_tracemalloc_off(self):
        assert not tracemalloc.is_tracing()

    def test_profiled_study_covers_every_pipeline_phase(self):
        from repro import WorldConfig, run_study

        study = run_study(WorldConfig.tiny(), profile=True)
        gauges = study.telemetry.snapshot()["metrics"]["gauges"]
        for phase in ("world", "telescope", "crawl", "join", "events"):
            for family in GAUGE_FAMILIES:
                assert f"repro.profile.{family}{{phase={phase}}}" in gauges

    def test_profiled_outputs_match_unprofiled(self, tiny_study):
        from repro import WorldConfig, run_study

        profiled = run_study(WorldConfig.tiny(), profile=True)
        assert profiled.report() == tiny_study.report()
