"""Telemetry threaded through the pipeline: equivalence, merging, chaos.

The tentpole contracts under test:

- **Determinism**: a study's outputs are bit-identical whether telemetry
  is enabled or the default no-op bundle. Two *fresh* worlds are built
  from the same config (re-running over a shared world would consume
  the world's telescope RNG stream and diverge for unrelated reasons).
- **Worker-count invariance**: the crawl's shard stats merge to the
  same totals at 1, 2, and 4 workers.
- **Accounting**: chaos fault counters match the injector's event log,
  and the crawl/store counters match the stores they describe.
"""

import json

import pytest

from repro import ChaosConfig, RunTelemetry, WorldConfig, build_world, run_study
from repro.obs import SNAPSHOT_SCHEMA
from repro.openintel.platform import OpenIntelPlatform

CONFIG = WorldConfig.tiny()


@pytest.fixture(scope="module")
def plain_study():
    """A tiny clean run with telemetry left at the no-op default."""
    return run_study(CONFIG)


@pytest.fixture(scope="module")
def traced_study():
    """The same tiny clean run, fully instrumented."""
    return run_study(CONFIG, telemetry=RunTelemetry.create())


@pytest.fixture(scope="module")
def chaos_study():
    """A tiny chaos run, fully instrumented."""
    return run_study(CONFIG, chaos=ChaosConfig.preset("moderate", seed=0),
                     telemetry=RunTelemetry.create())


class TestEquivalence:
    """Telemetry observes, never perturbs."""

    def test_reports_are_bit_identical(self, plain_study, traced_study):
        assert plain_study.report() == traced_study.report()

    def test_stores_and_events_are_equal(self, plain_study, traced_study):
        assert plain_study.store == traced_study.store
        assert len(plain_study.events) == len(traced_study.events)
        assert plain_study.join.classified == traced_study.join.classified

    def test_disabled_run_records_nothing(self, plain_study):
        assert not plain_study.telemetry.enabled
        snap = plain_study.telemetry.snapshot()
        assert snap["metrics"] == {"counters": {}, "gauges": {},
                                   "histograms": {}}
        assert snap["spans"] == []


class TestShardStatMerging:
    """Merged crawl stats are identical at any worker count."""

    @pytest.fixture(scope="class")
    def stats_by_workers(self):
        world = build_world(CONFIG)
        stats = {}
        for n_workers in (1, 2, 4):
            platform = OpenIntelPlatform(world,
                                         telemetry=RunTelemetry.create())
            platform.run_parallel(n_workers)
            stats[n_workers] = platform.stats
        return stats

    def test_merged_stats_equal_at_1_2_4_workers(self, stats_by_workers):
        one, two, four = (stats_by_workers[n] for n in (1, 2, 4))
        assert one.state() == two.state() == four.state()

    def test_stats_are_internally_consistent(self, stats_by_workers):
        stats = stats_by_workers[1]
        assert stats.domain_days == (stats.fast_path_days + stats.dead_days
                                     + stats.resolver_days)
        assert stats.rows == (stats.ok + stats.timeout + stats.servfail
                              + stats.other)
        assert stats.rows > 0
        assert sum(stats.rtt_bucket_counts) == stats.ok
        assert stats.rtt_sum > 0.0

    def test_published_metrics_match_the_stats(self, stats_by_workers):
        telemetry = RunTelemetry.create()
        stats = stats_by_workers[4]
        stats.publish(telemetry.registry)
        counters = telemetry.snapshot()["metrics"]["counters"]
        assert counters["repro.crawl.domain_days"] == stats.domain_days
        assert counters["repro.crawl.rows"] == stats.rows
        assert counters["repro.crawl.responses{status=ok}"] == stats.ok
        hist = telemetry.snapshot()["metrics"]["histograms"]
        assert hist["repro.crawl.rtt_ms"]["count"] == stats.ok
        assert hist["repro.crawl.rtt_ms"]["sum"] == pytest.approx(
            stats.rtt_sum)


class TestCleanRunAccounting:
    def test_crawl_rows_match_the_store(self, traced_study):
        counters = traced_study.telemetry.snapshot()["metrics"]["counters"]
        assert counters["repro.crawl.rows"] == traced_study.store.n_measurements
        assert counters["repro.store.ingested"] == \
            traced_study.store.n_measurements
        assert counters["repro.store.rejected"] == 0

    def test_store_gauges(self, traced_study):
        gauges = traced_study.telemetry.snapshot()["metrics"]["gauges"]
        assert gauges["repro.store.daily_aggregates"] > 0
        assert gauges["repro.store.bucket_aggregates"] > 0

    def test_no_chaos_or_stream_metrics_on_a_clean_run(self, traced_study):
        counters = traced_study.telemetry.snapshot()["metrics"]["counters"]
        assert not any(name.startswith("repro.chaos.") for name in counters)
        assert not any(name.startswith("repro.stream.") for name in counters)


class TestSpans:
    def test_study_span_tree(self, traced_study):
        tracer = traced_study.telemetry.tracer
        study = tracer.roots[0]
        assert study.name == "study"
        assert study.duration is not None and study.duration >= 0
        child_names = [c.name for c in study.children]
        assert child_names == ["world", "telescope", "crawl", "join",
                               "events"]
        crawl = study.children[2]
        assert crawl.meta["workers"] == 1
        assert crawl.meta["rows"] == traced_study.store.n_measurements

    def test_lazy_analyses_span_as_their_own_roots(self, traced_study):
        traced_study.monthly  # computed on first access, after "study" closed
        traced_study.monthly  # cached: no second span
        roots = [r.name for r in traced_study.telemetry.tracer.roots]
        assert roots.count("analysis.monthly") == 1
        assert roots[0] == "study"

    def test_chaos_run_gains_a_feed_harden_span(self, chaos_study):
        study = chaos_study.telemetry.tracer.roots[0]
        child_names = [c.name for c in study.children]
        assert child_names == ["world", "telescope", "crawl", "feed_harden",
                               "join", "events"]

    def test_snapshot_is_json_round_trippable(self, traced_study):
        snap = json.loads(json.dumps(traced_study.telemetry.snapshot()))
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["spans"][0]["name"] == "study"


class TestChaosAccounting:
    def test_fault_counters_match_the_event_log(self, chaos_study):
        injector = chaos_study.chaos
        assert injector is not None and injector.events
        counters = chaos_study.telemetry.snapshot()["metrics"]["counters"]
        chaos_counters = {name: n for name, n in counters.items()
                          if name.startswith("repro.chaos.faults")}
        assert sum(chaos_counters.values()) == len(injector.events)
        # Per-(surface, kind) breakdown matches the injector's own tally.
        for (surface, kind), n in injector.counts.items():
            key = f"repro.chaos.faults{{kind={kind},surface={surface}}}"
            assert chaos_counters[key] == n

    def test_stream_counters_cover_the_hardened_feed(self, chaos_study):
        counters = chaos_study.telemetry.snapshot()["metrics"]["counters"]
        n_in = counters["repro.stream.records_in{job=feed-validate}"]
        n_out = counters["repro.stream.records_out{job=feed-validate}"]
        n_dead = counters["repro.stream.dead_letters{job=feed-validate}"]
        assert n_in > 0
        assert n_out <= n_in
        assert n_dead == len(chaos_study.chaos.dead_letters)

    def test_store_rejects_are_counted(self, chaos_study):
        counters = chaos_study.telemetry.snapshot()["metrics"]["counters"]
        assert counters["repro.store.rejected"] == \
            chaos_study.store.n_rejected
