"""Span nesting and timing, driven by a hand-advanced fake clock."""

import json

import pytest

from repro.obs import NULL_TRACER, FakeClock, MonotonicClock, Tracer


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def tracer(clock):
    return Tracer(clock)


class TestFakeClock:
    def test_advances_exactly(self, clock):
        assert clock.now() == 0.0
        clock.advance(1.5)
        clock.advance(0.25)
        assert clock.now() == 1.75

    def test_rejects_going_backwards(self, clock):
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_monotonic_clock_is_monotonic(self):
        clock = MonotonicClock()
        assert clock.now() <= clock.now()


class TestSpanTiming:
    def test_duration_is_exact_under_fake_clock(self, clock, tracer):
        with tracer.span("study") as span:
            clock.advance(2.5)
        assert span.duration == 2.5
        assert (span.start, span.end) == (0.0, 2.5)

    def test_duration_is_none_while_open(self, clock, tracer):
        with tracer.span("study") as span:
            assert span.duration is None
        assert span.duration == 0.0

    def test_nested_spans_nest_and_time_independently(self, clock, tracer):
        with tracer.span("study"):
            clock.advance(1.0)
            with tracer.span("crawl"):
                clock.advance(3.0)
            clock.advance(0.5)

        (study,) = tracer.roots
        (crawl,) = study.children
        assert study.duration == 4.5
        assert crawl.duration == 3.0
        assert crawl.start == 1.0

    def test_sibling_roots_when_stack_is_empty(self, clock, tracer):
        # A Study's lazy analyses run after the study span closed: each
        # becomes its own root.
        with tracer.span("study"):
            clock.advance(1.0)
        with tracer.span("analysis.monthly"):
            clock.advance(0.5)
        assert [r.name for r in tracer.roots] == ["study", "analysis.monthly"]
        assert tracer.current is None

    def test_span_closes_when_the_block_raises(self, clock, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("study"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        (study,) = tracer.roots
        assert study.duration == 1.0
        assert tracer.current is None  # stack unwound

    def test_current_tracks_the_innermost_open_span(self, tracer):
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer


class TestAnnotations:
    def test_annotate_merges_with_open_kwargs(self, tracer):
        with tracer.span("crawl", workers=4) as span:
            span.annotate(rows=120)
        assert span.meta == {"workers": 4, "rows": 120}

    def test_snapshot_shape(self, clock, tracer):
        with tracer.span("study"):
            clock.advance(1.0)
            with tracer.span("crawl", workers=2):
                clock.advance(2.0)
        snap = json.loads(json.dumps(tracer.snapshot()))
        assert snap == [{
            "name": "study",
            "start": 0.0,
            "duration_s": 3.0,
            "children": [{"name": "crawl", "start": 1.0,
                          "duration_s": 2.0, "meta": {"workers": 2}}],
        }]

    def test_render_tree_indents_and_sorts_meta(self, clock, tracer):
        with tracer.span("study"):
            clock.advance(1.0)
            with tracer.span("crawl", workers=2, rows=10):
                clock.advance(2.0)
        tree = tracer.render_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("study")
        assert "   3.000s" in lines[0]
        assert lines[1].startswith("  crawl")
        assert lines[1].endswith("(rows=10, workers=2)")

    def test_render_tree_marks_open_spans(self, tracer):
        with tracer.span("study"):
            assert "(open)" in tracer.render_tree()


class TestNullTracer:
    def test_records_nothing(self):
        with NULL_TRACER.span("study", workers=2) as span:
            span.annotate(rows=1)
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.snapshot() == []
        assert NULL_TRACER.render_tree() == ""

    def test_disabled_flag(self):
        assert Tracer().enabled
        assert not NULL_TRACER.enabled
