"""Registry semantics: counters, gauges, histograms, exposition."""

import json
import math

import pytest

from repro.obs import (
    DEFAULT_BUCKETS_MS,
    NULL_REGISTRY,
    BufferedRegistry,
    MetricsRegistry,
    NullRegistry,
    buffered,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        c = registry.counter("repro.test.hits")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("repro.test.hits") \
            is registry.counter("repro.test.hits")

    def test_labels_distinguish_series(self, registry):
        a = registry.counter("repro.test.hits", kind="a")
        b = registry.counter("repro.test.hits", kind="b")
        assert a is not b
        a.inc()
        assert (a.value, b.value) == (1, 0)

    def test_label_order_does_not_matter(self, registry):
        a = registry.counter("repro.test.hits", x="1", y="2")
        b = registry.counter("repro.test.hits", y="2", x="1")
        assert a is b

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("repro.test.hits").inc(-1)

    def test_zero_increment_allowed(self, registry):
        c = registry.counter("repro.test.hits")
        c.inc(0)
        assert c.value == 0


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("repro.test.depth")
        g.set(10.0)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5

    def test_kind_conflict_rejected(self, registry):
        registry.gauge("repro.test.depth")
        with pytest.raises(ValueError):
            registry.counter("repro.test.depth")


class TestHistogram:
    def test_value_on_bound_falls_in_that_bucket(self, registry):
        h = registry.histogram("repro.test.rtt", buckets=(1.0, 10.0))
        h.observe(1.0)    # le=1.0 bucket (Prometheus semantics)
        h.observe(1.001)  # le=10.0 bucket
        h.observe(99.0)   # overflow (+Inf)
        assert h.bucket_counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(101.001)

    def test_default_bounds(self, registry):
        h = registry.histogram("repro.test.rtt")
        assert h.bounds == DEFAULT_BUCKETS_MS
        assert len(h.bucket_counts) == len(DEFAULT_BUCKETS_MS) + 1

    def test_unsorted_bounds_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("repro.test.bad", buckets=(10.0, 1.0))

    def test_re_register_with_other_bounds_rejected(self, registry):
        registry.histogram("repro.test.rtt", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("repro.test.rtt", buckets=(1.0, 3.0))
        # ... but re-requesting without bounds is fine.
        assert registry.histogram("repro.test.rtt").bounds == (1.0, 2.0)

    def test_add_counts_bulk_merge(self, registry):
        h = registry.histogram("repro.test.rtt", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.add_counts([1, 2, 3], 40.0)
        assert h.bucket_counts == [2, 2, 3]
        assert h.count == 7
        assert h.sum == pytest.approx(40.5)

    def test_add_counts_layout_mismatch_rejected(self, registry):
        h = registry.histogram("repro.test.rtt", buckets=(1.0, 10.0))
        with pytest.raises(ValueError):
            h.add_counts([1, 2], 0.0)


class TestExposition:
    def test_snapshot_is_json_serializable_and_complete(self, registry):
        registry.counter("repro.a", kind="x").inc(3)
        registry.gauge("repro.b").set(1.5)
        registry.histogram("repro.c", buckets=(1.0,)).observe(0.5)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert snap["counters"] == {"repro.a{kind=x}": 3}
        assert snap["gauges"] == {"repro.b": 1.5}
        assert snap["histograms"]["repro.c"] == {
            "bounds": [1.0], "counts": [1, 0], "count": 1, "sum": 0.5,
            "nan": 0}

    def test_prometheus_rendering(self, registry):
        registry.counter("repro.chaos.faults", surface="feed",
                         kind="drop").inc(2)
        registry.gauge("repro.store.daily_aggregates").set(7)
        h = registry.histogram("repro.crawl.rtt_ms", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        text = registry.render_prometheus()
        assert "# TYPE repro_chaos_faults counter" in text
        assert 'repro_chaos_faults{kind="drop",surface="feed"} 2' in text
        assert "# TYPE repro_store_daily_aggregates gauge" in text
        # Histogram buckets are cumulative, with +Inf, _sum and _count.
        assert 'repro_crawl_rtt_ms_bucket{le="1.0"} 1' in text
        assert 'repro_crawl_rtt_ms_bucket{le="10.0"} 2' in text
        assert 'repro_crawl_rtt_ms_bucket{le="+Inf"} 2' in text
        assert "repro_crawl_rtt_ms_count 2" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render_prometheus() == ""
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}}

    def test_rendering_is_stable_across_calls(self, registry):
        registry.counter("repro.a", kind="x").inc()
        registry.histogram("repro.c", buckets=(1.0,)).observe(0.5)
        assert registry.render_prometheus() == registry.render_prometheus()
        assert registry.snapshot() == registry.snapshot()


class TestHistogramNaN:
    """NaN observations are tallied apart, never poisoning the sum."""

    def test_nan_lands_in_its_own_tally(self, registry):
        h = registry.histogram("repro.test.rtt", buckets=(1.0,))
        h.observe(0.5)
        h.observe(float("nan"))
        assert h.nan == 1
        assert h.count == 1
        assert not math.isnan(h.sum)
        assert h.bucket_counts == [1, 0]

    def test_nan_appears_in_snapshot(self, registry):
        h = registry.histogram("repro.test.rtt", buckets=(1.0,))
        h.observe(float("nan"))
        snap = registry.snapshot()["histograms"]["repro.test.rtt"]
        assert snap["nan"] == 1
        assert snap["count"] == 0

    def test_nan_series_rendered_only_when_nonzero(self, registry):
        h = registry.histogram("repro.test.rtt", buckets=(1.0,))
        h.observe(0.5)
        assert "_nan" not in registry.render_prometheus()
        h.observe(float("nan"))
        assert "repro_test_rtt_nan 1" in registry.render_prometheus()

    def test_add_counts_carries_nan(self, registry):
        h = registry.histogram("repro.test.rtt", buckets=(1.0,))
        h.add_counts([1, 0], 0.5, nan=3)
        assert h.nan == 3
        with pytest.raises(ValueError):
            h.add_counts([1, 0], 0.5, nan=-1)


class TestLabelSanitization:
    def test_label_names_are_sanitized(self, registry):
        registry.counter("repro.a", **{"kind.of": "x"}).inc()
        assert 'kind_of="x"' in registry.render_prometheus()

    def test_digit_prefixed_label_gets_underscore(self, registry):
        registry.counter("repro.a", **{"0day": "y"}).inc()
        assert '_0day="y"' in registry.render_prometheus()

    def test_colliding_label_names_get_positional_suffixes(self, registry):
        # `a.b` and `a-b` both sanitize to `a_b`: the second must not
        # silently overwrite the first's series.
        registry.counter("repro.a", **{"a.b": "x", "a-b": "y"}).inc()
        text = registry.render_prometheus()
        assert 'a_b="' in text
        assert 'a_b_2="' in text

    def test_collision_suffixes_are_deterministic(self, registry):
        registry.counter("repro.a", **{"a.b": "x", "a-b": "y"}).inc()
        other = MetricsRegistry()
        other.counter("repro.a", **{"a-b": "y", "a.b": "x"}).inc()
        assert registry.render_prometheus() == other.render_prometheus()

    def test_label_values_are_escaped(self, registry):
        registry.counter("repro.a", k='va"l\n').inc()
        assert r'k="va\"l\n"' in registry.render_prometheus()


class TestBufferedRegistry:
    @pytest.fixture()
    def target(self):
        return MetricsRegistry()

    @pytest.fixture()
    def staging(self, target):
        return BufferedRegistry(target)

    def test_updates_stay_staged_until_flush(self, staging, target):
        staging.counter("repro.r.probes").inc(5)
        staging.gauge("repro.r.depth").set(3.0)
        staging.histogram("repro.r.lat", buckets=(1.0,)).observe(0.5)
        assert target.snapshot() == {"counters": {}, "gauges": {},
                                     "histograms": {}}
        staging.flush()
        snap = target.snapshot()
        assert snap["counters"]["repro.r.probes"] == 5
        assert snap["gauges"]["repro.r.depth"] == 3.0
        assert snap["histograms"]["repro.r.lat"]["count"] == 1

    def test_flush_resets_in_place(self, staging, target):
        c = staging.counter("repro.r.probes")
        c.inc(5)
        staging.flush()
        # The bound reference survives and keeps accumulating: a second
        # flush folds only the new increments.
        c.inc(2)
        staging.flush()
        assert target.counter("repro.r.probes").value == 7

    def test_untouched_gauge_is_not_flushed(self, staging, target):
        target.gauge("repro.r.depth").set(9.0)
        staging.gauge("repro.r.depth")  # created but never written
        staging.flush()
        assert target.gauge("repro.r.depth").value == 9.0

    def test_discard_drops_staged_updates(self, staging, target):
        c = staging.counter("repro.r.probes")
        c.inc(5)
        staging.gauge("repro.r.depth").set(3.0)
        staging.discard()
        staging.flush()
        assert target.snapshot() == {"counters": {}, "gauges": {},
                                     "histograms": {}}
        c.inc(1)  # the object still works after a discard
        staging.flush()
        assert target.counter("repro.r.probes").value == 1

    def test_buffered_factory(self, target):
        assert isinstance(buffered(target), BufferedRegistry)
        assert buffered(NULL_REGISTRY) is NULL_REGISTRY

    def test_plain_registry_flush_is_a_noop(self, target):
        target.counter("repro.r.probes").inc()
        target.flush()
        assert target.counter("repro.r.probes").value == 1


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        null = NullRegistry()
        null.counter("x", a="b").inc(5)
        null.gauge("y").set(3)
        null.histogram("z").observe(1.0)
        assert null.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": {}}
        assert null.render_prometheus() == ""

    def test_disabled_flag(self):
        assert MetricsRegistry().enabled
        assert not NULL_REGISTRY.enabled

    def test_shared_metric_objects(self):
        # One inert object per kind: instrumentation allocates nothing.
        null = NullRegistry()
        assert null.counter("a") is null.counter("b", k="v")
        assert null.gauge("a") is null.gauge("b")
        assert null.histogram("a") is null.histogram("b")
