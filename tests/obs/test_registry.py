"""Registry semantics: counters, gauges, histograms, exposition."""

import json

import pytest

from repro.obs import (
    DEFAULT_BUCKETS_MS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        c = registry.counter("repro.test.hits")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("repro.test.hits") \
            is registry.counter("repro.test.hits")

    def test_labels_distinguish_series(self, registry):
        a = registry.counter("repro.test.hits", kind="a")
        b = registry.counter("repro.test.hits", kind="b")
        assert a is not b
        a.inc()
        assert (a.value, b.value) == (1, 0)

    def test_label_order_does_not_matter(self, registry):
        a = registry.counter("repro.test.hits", x="1", y="2")
        b = registry.counter("repro.test.hits", y="2", x="1")
        assert a is b

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("repro.test.hits").inc(-1)

    def test_zero_increment_allowed(self, registry):
        c = registry.counter("repro.test.hits")
        c.inc(0)
        assert c.value == 0


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("repro.test.depth")
        g.set(10.0)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5

    def test_kind_conflict_rejected(self, registry):
        registry.gauge("repro.test.depth")
        with pytest.raises(ValueError):
            registry.counter("repro.test.depth")


class TestHistogram:
    def test_value_on_bound_falls_in_that_bucket(self, registry):
        h = registry.histogram("repro.test.rtt", buckets=(1.0, 10.0))
        h.observe(1.0)    # le=1.0 bucket (Prometheus semantics)
        h.observe(1.001)  # le=10.0 bucket
        h.observe(99.0)   # overflow (+Inf)
        assert h.bucket_counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(101.001)

    def test_default_bounds(self, registry):
        h = registry.histogram("repro.test.rtt")
        assert h.bounds == DEFAULT_BUCKETS_MS
        assert len(h.bucket_counts) == len(DEFAULT_BUCKETS_MS) + 1

    def test_unsorted_bounds_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("repro.test.bad", buckets=(10.0, 1.0))

    def test_re_register_with_other_bounds_rejected(self, registry):
        registry.histogram("repro.test.rtt", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("repro.test.rtt", buckets=(1.0, 3.0))
        # ... but re-requesting without bounds is fine.
        assert registry.histogram("repro.test.rtt").bounds == (1.0, 2.0)

    def test_add_counts_bulk_merge(self, registry):
        h = registry.histogram("repro.test.rtt", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.add_counts([1, 2, 3], 40.0)
        assert h.bucket_counts == [2, 2, 3]
        assert h.count == 7
        assert h.sum == pytest.approx(40.5)

    def test_add_counts_layout_mismatch_rejected(self, registry):
        h = registry.histogram("repro.test.rtt", buckets=(1.0, 10.0))
        with pytest.raises(ValueError):
            h.add_counts([1, 2], 0.0)


class TestExposition:
    def test_snapshot_is_json_serializable_and_complete(self, registry):
        registry.counter("repro.a", kind="x").inc(3)
        registry.gauge("repro.b").set(1.5)
        registry.histogram("repro.c", buckets=(1.0,)).observe(0.5)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert snap["counters"] == {"repro.a{kind=x}": 3}
        assert snap["gauges"] == {"repro.b": 1.5}
        assert snap["histograms"]["repro.c"] == {
            "bounds": [1.0], "counts": [1, 0], "count": 1, "sum": 0.5}

    def test_prometheus_rendering(self, registry):
        registry.counter("repro.chaos.faults", surface="feed",
                         kind="drop").inc(2)
        registry.gauge("repro.store.daily_aggregates").set(7)
        h = registry.histogram("repro.crawl.rtt_ms", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        text = registry.render_prometheus()
        assert "# TYPE repro_chaos_faults counter" in text
        assert 'repro_chaos_faults{kind="drop",surface="feed"} 2' in text
        assert "# TYPE repro_store_daily_aggregates gauge" in text
        # Histogram buckets are cumulative, with +Inf, _sum and _count.
        assert 'repro_crawl_rtt_ms_bucket{le="1.0"} 1' in text
        assert 'repro_crawl_rtt_ms_bucket{le="10.0"} 2' in text
        assert 'repro_crawl_rtt_ms_bucket{le="+Inf"} 2' in text
        assert "repro_crawl_rtt_ms_count 2" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render_prometheus() == ""


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        null = NullRegistry()
        null.counter("x", a="b").inc(5)
        null.gauge("y").set(3)
        null.histogram("z").observe(1.0)
        assert null.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": {}}
        assert null.render_prometheus() == ""

    def test_disabled_flag(self):
        assert MetricsRegistry().enabled
        assert not NULL_REGISTRY.enabled

    def test_shared_metric_objects(self):
        # One inert object per kind: instrumentation allocates nothing.
        null = NullRegistry()
        assert null.counter("a") is null.counter("b", k="v")
        assert null.gauge("a") is null.gauge("b")
        assert null.histogram("a") is null.histogram("b")
