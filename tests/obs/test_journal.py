"""The run journal: envelopes, binding, crash prefixes, durations."""

import json

import pytest

from repro.obs import (
    JOURNAL_SCHEMA,
    NULL_JOURNAL,
    RunJournal,
    phase_durations,
    read_journal,
)
from repro.obs.clock import FakeClock


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def journal(tmp_path, clock):
    return RunJournal(tmp_path / "run.jsonl", run_id="abc123",
                      clock=clock,
                      started_at_utc="2021-03-01T12:00:00+00:00")


class TestEnvelope:
    def test_header_is_the_first_record(self, journal, tmp_path):
        journal.close()
        records = read_journal(tmp_path / "run.jsonl")
        head = records[0]
        assert head["type"] == "journal.open"
        assert head["schema"] == JOURNAL_SCHEMA
        assert head["run_id"] == "abc123"
        assert head["started_at_utc"] == "2021-03-01T12:00:00+00:00"

    def test_envelope_fields_are_deterministic(self, journal, clock,
                                               tmp_path):
        clock.advance(1.5)
        journal.emit("phase.start", phase="crawl")
        journal.close()
        record = read_journal(tmp_path / "run.jsonl")[1]
        assert record == {"seq": 1, "t": 1.5,
                          "utc": "2021-03-01T12:00:01.500000+00:00",
                          "type": "phase.start", "phase": "crawl"}

    def test_footer_counts_records(self, journal, tmp_path):
        journal.emit("a")
        journal.emit("b")
        journal.close()
        records = read_journal(tmp_path / "run.jsonl")
        assert records[-1]["type"] == "journal.close"
        assert records[-1]["records"] == 3  # header + a + b

    def test_each_record_is_one_json_line(self, journal, tmp_path):
        journal.emit("x", n=1)
        journal.close()
        with open(tmp_path / "run.jsonl") as fp:
            lines = fp.read().splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)

    def test_emit_after_close_is_a_silent_noop(self, journal, tmp_path):
        journal.close()
        journal.emit("late.analysis")  # must not raise
        assert len(read_journal(tmp_path / "run.jsonl")) == 2


class TestBinding:
    def test_bound_fields_are_stamped(self, journal, tmp_path):
        bound = journal.bind(incarnation=2)
        bound.emit("worker.checkpoint", ticks=4)
        journal.close()
        record = read_journal(tmp_path / "run.jsonl")[1]
        assert record["incarnation"] == 2
        assert record["ticks"] == 4

    def test_explicit_fields_win_over_bound(self, journal, tmp_path):
        bound = journal.bind(surface="reactive")
        bound.emit("x", surface="other")
        journal.close()
        assert read_journal(tmp_path / "run.jsonl")[1]["surface"] == "other"

    def test_bind_chains(self, journal, tmp_path):
        bound = journal.bind(a=1).bind(b=2)
        bound.emit("x")
        journal.close()
        record = read_journal(tmp_path / "run.jsonl")[1]
        assert (record["a"], record["b"]) == (1, 2)


class TestCrashPrefix:
    def test_partial_trailing_line_is_ignored(self, journal, tmp_path):
        journal.emit("phase.start", phase="crawl")
        journal.close()
        path = tmp_path / "run.jsonl"
        with open(path, "a") as fp:
            fp.write('{"seq": 99, "type": "tru')  # the run died mid-write
        records = read_journal(path)
        assert [r["type"] for r in records] == \
            ["journal.open", "phase.start", "journal.close"]

    def test_every_record_is_flushed_immediately(self, journal, tmp_path):
        journal.emit("phase.start", phase="crawl")
        # No close(): the file must already hold both records.
        assert len(read_journal(tmp_path / "run.jsonl")) == 2


class TestNullJournal:
    def test_disabled_and_inert(self):
        assert not NULL_JOURNAL.enabled
        NULL_JOURNAL.emit("anything", x=1)
        NULL_JOURNAL.close()
        assert NULL_JOURNAL.bind(incarnation=1) is NULL_JOURNAL


class TestPhaseDurations:
    def test_from_path_and_records(self, journal, clock, tmp_path):
        journal.emit("phase.start", phase="crawl")
        clock.advance(2.0)
        journal.emit("phase.finish", phase="crawl", duration_s=2.0)
        journal.emit("phase.finish", phase="join", duration_s=0.25)
        journal.close()
        path = tmp_path / "run.jsonl"
        assert phase_durations(path) == {"crawl": 2.0, "join": 0.25}
        assert phase_durations(read_journal(path)) == \
            {"crawl": 2.0, "join": 0.25}

    def test_last_finish_wins(self, journal, tmp_path):
        journal.emit("phase.finish", phase="crawl", duration_s=5.0)
        journal.emit("phase.finish", phase="crawl", duration_s=1.0)
        journal.close()
        assert phase_durations(tmp_path / "run.jsonl") == {"crawl": 1.0}
