"""Telemetry (repro.obs) tests."""
