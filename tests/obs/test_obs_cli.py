"""The ``repro obs`` subcommands over crafted journals and snapshots."""

import json

import pytest

from repro.cli import main
from repro.obs import RunJournal, RunTelemetry
from repro.obs.cli import load_observations
from repro.obs.clock import FakeClock


@pytest.fixture()
def journal_path(tmp_path):
    clock = FakeClock()
    journal = RunJournal(tmp_path / "run.jsonl", run_id="deadbeef",
                         clock=clock,
                         started_at_utc="2021-03-01T00:00:00+00:00")
    journal.emit("run.start", seed=42)
    journal.emit("phase.start", phase="crawl")
    clock.advance(2.0)
    journal.emit("phase.finish", phase="crawl", duration_s=2.0,
                 cached=False)
    journal.emit("chaos.fault", surface="feed", kind="drop")
    journal.emit("run.finish", degraded=False, faults=1)
    journal.close()
    return str(tmp_path / "run.jsonl")


def snapshot_file(tmp_path, name, **gauges):
    telemetry = RunTelemetry.create()
    for key, value in gauges.items():
        telemetry.registry.gauge(f"repro.bench.demo.{key}").set(value)
    path = tmp_path / name
    telemetry.write_json(str(path))
    return str(path)


class TestLoadObservations:
    def test_detects_journal(self, journal_path):
        kind, records = load_observations(journal_path)
        assert kind == "journal"
        assert records[0]["type"] == "journal.open"

    def test_detects_snapshot(self, tmp_path):
        path = snapshot_file(tmp_path, "snap.json", wall_s=1.0)
        kind, doc = load_observations(path)
        assert kind == "snapshot"
        assert doc["metrics"]["gauges"]

    def test_rejects_other_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(ValueError):
            load_observations(str(path))


class TestSummary:
    def test_journal_summary(self, journal_path, capsys):
        assert main(["obs", "summary", journal_path]) == 0
        out = capsys.readouterr().out
        assert "run deadbeef" in out
        assert "crawl" in out and "2.000s" in out
        assert "chaos faults: 1" in out

    def test_snapshot_summary(self, tmp_path, capsys):
        path = snapshot_file(tmp_path, "snap.json", wall_s=1.0)
        assert main(["obs", "summary", path]) == 0
        assert "1 gauges" in capsys.readouterr().out

    def test_truncated_journal_is_flagged(self, tmp_path, capsys):
        journal = RunJournal(tmp_path / "dead.jsonl", clock=FakeClock())
        journal.emit("phase.start", phase="crawl")
        # No close(): the run "crashed"; the prefix must still summarize.
        assert main(["obs", "summary", str(tmp_path / "dead.jsonl")]) == 0
        assert "no footer" in capsys.readouterr().out
        journal.close()


class TestTail:
    def test_last_n_records(self, journal_path, capsys):
        assert main(["obs", "tail", journal_path, "-n", "2"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        assert "run.finish" in lines[0]
        assert "journal.close" in lines[1]

    def test_snapshot_is_refused(self, tmp_path, capsys):
        path = snapshot_file(tmp_path, "snap.json", wall_s=1.0)
        assert main(["obs", "tail", path]) == 2


class TestDiff:
    def test_identical_snapshots_exit_zero(self, tmp_path, capsys):
        a = snapshot_file(tmp_path, "a.json", wall_s=1.0)
        b = snapshot_file(tmp_path, "b.json", wall_s=1.0)
        assert main(["obs", "diff", a, b]) == 0

    def test_differing_snapshots_exit_one(self, tmp_path, capsys):
        a = snapshot_file(tmp_path, "a.json", wall_s=1.0, rows=5)
        b = snapshot_file(tmp_path, "b.json", wall_s=2.0)
        assert main(["obs", "diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "~ repro.bench.demo.wall_s: 1.0 -> 2.0" in out
        assert "- repro.bench.demo.rows = 5" in out

    def test_journal_is_refused(self, journal_path, tmp_path, capsys):
        b = snapshot_file(tmp_path, "b.json", wall_s=1.0)
        assert main(["obs", "diff", journal_path, b]) == 2


class TestBenchDiff:
    def bench_dir(self, tmp_path, name, **gauges):
        d = tmp_path / name
        d.mkdir()
        snapshot_file(d, "BENCH_demo.json", **gauges)
        return str(d)

    def test_regression_fails(self, tmp_path, capsys):
        base = self.bench_dir(tmp_path, "base", wall_s=1.0, speedup=4.0)
        fresh = self.bench_dir(tmp_path, "fresh", wall_s=2.0, speedup=4.0)
        assert main(["obs", "bench-diff", fresh, base]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_speedup_drop_is_a_regression(self, tmp_path, capsys):
        base = self.bench_dir(tmp_path, "base", wall_s=1.0, speedup=4.0)
        fresh = self.bench_dir(tmp_path, "fresh", wall_s=1.0, speedup=2.0)
        assert main(["obs", "bench-diff", fresh, base]) == 1

    def test_improvement_and_noise_pass(self, tmp_path, capsys):
        base = self.bench_dir(tmp_path, "base", wall_s=2.0, rows=100)
        fresh = self.bench_dir(tmp_path, "fresh", wall_s=1.0, rows=200)
        # rows has no direction: a 2x change is reported, never failed.
        assert main(["obs", "bench-diff", fresh, base]) == 0

    def test_report_only_never_fails(self, tmp_path, capsys):
        base = self.bench_dir(tmp_path, "base", wall_s=1.0)
        fresh = self.bench_dir(tmp_path, "fresh", wall_s=9.0)
        assert main(["obs", "bench-diff", fresh, base,
                     "--report-only"]) == 0

    def test_threshold_is_respected(self, tmp_path, capsys):
        base = self.bench_dir(tmp_path, "base", wall_s=1.0)
        fresh = self.bench_dir(tmp_path, "fresh", wall_s=1.2)
        assert main(["obs", "bench-diff", fresh, base]) == 0  # within 25%
        assert main(["obs", "bench-diff", fresh, base,
                     "--threshold", "0.1"]) == 1

    def test_no_common_files_is_an_error(self, tmp_path, capsys):
        base = tmp_path / "base"
        base.mkdir()
        fresh = self.bench_dir(tmp_path, "fresh", wall_s=1.0)
        assert main(["obs", "bench-diff", fresh, str(base)]) == 2


class TestGraphFromJournal:
    def test_dot_nodes_carry_durations(self, journal_path, capsys):
        assert main(["graph", "--dot", "--from-journal",
                     journal_path]) == 0
        out = capsys.readouterr().out
        assert '"crawl" [shape=box label="crawl\\n2.000s"];' in out
        # Phases the journal never finished render unannotated.
        assert '"world" [shape=ellipse];' in out
