"""Tests for the radix trie, including a brute-force LPM property check."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.ip import IPV4_SPACE, IPv4Prefix, network_of
from repro.net.prefix_trie import PrefixTrie


class TestBasics:
    def test_empty_lookup(self):
        assert PrefixTrie().lookup("1.2.3.4") is None

    def test_insert_and_exact(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        assert trie.exact("10.0.0.0/8") == "a"
        assert trie.exact("10.0.0.0/9") is None

    def test_replace_value(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        trie.insert("10.0.0.0/8", "b")
        assert trie.exact("10.0.0.0/8") == "b"
        assert len(trie) == 1

    def test_longest_match_prefers_specific(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "outer")
        trie.insert("10.1.0.0/16", "inner")
        assert trie.lookup("10.1.2.3") == "inner"
        assert trie.lookup("10.2.2.3") == "outer"

    def test_longest_match_returns_prefix(self):
        trie = PrefixTrie()
        trie.insert("10.1.0.0/16", "x")
        (network, length), value = trie.longest_match("10.1.200.200")
        assert length == 16
        assert network == network_of(network, 16)
        assert value == "x"

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert("0.0.0.0/0", "default")
        assert trie.lookup("203.0.113.7") == "default"

    def test_host_route(self):
        trie = PrefixTrie()
        trie.insert("192.0.2.1/32", "host")
        assert trie.lookup("192.0.2.1") == "host"
        assert trie.lookup("192.0.2.2") is None

    def test_accepts_ipv4prefix_objects(self):
        trie = PrefixTrie()
        trie.insert(IPv4Prefix.parse("10.0.0.0/8"), 1)
        assert trie.lookup("10.0.0.1") == 1

    def test_len(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", 1)
        trie.insert("11.0.0.0/8", 2)
        assert len(trie) == 2


class TestRemove:
    def test_remove_existing(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", 1)
        assert trie.remove("10.0.0.0/8")
        assert trie.lookup("10.0.0.1") is None
        assert len(trie) == 0

    def test_remove_missing(self):
        assert not PrefixTrie().remove("10.0.0.0/8")

    def test_remove_keeps_others(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "outer")
        trie.insert("10.1.0.0/16", "inner")
        trie.remove("10.1.0.0/16")
        assert trie.lookup("10.1.2.3") == "outer"


class TestCoveredAndItems:
    def test_covered(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", 1)
        trie.insert("10.1.0.0/16", 2)
        trie.insert("11.0.0.0/8", 3)
        covered = {length for (_, length), _ in trie.covered("10.0.0.0/8")}
        assert covered == {8, 16}

    def test_items_in_address_order(self):
        trie = PrefixTrie()
        trie.insert("11.0.0.0/8", 3)
        trie.insert("10.0.0.0/8", 1)
        networks = [net for (net, _), _ in trie.items()]
        assert networks == sorted(networks)

    def test_covered_empty_subtree(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", 1)
        assert list(trie.covered("11.0.0.0/8")) == []


def _brute_force_lpm(entries, ip):
    best = None
    for (network, length), value in entries:
        mask = 0 if length == 0 else ((1 << length) - 1) << (32 - length)
        if ip & mask == network and (best is None or length > best[0]):
            best = (length, value)
    return best[1] if best else None


PREFIXES = st.tuples(
    st.integers(min_value=0, max_value=IPV4_SPACE - 1),
    st.integers(min_value=0, max_value=32),
)


class TestLpmProperty:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(PREFIXES, min_size=1, max_size=40),
           st.lists(st.integers(min_value=0, max_value=IPV4_SPACE - 1),
                    min_size=1, max_size=20))
    def test_matches_brute_force(self, raw_prefixes, ips):
        trie = PrefixTrie()
        entries = []
        for i, (base, length) in enumerate(raw_prefixes):
            network = network_of(base, length)
            trie.insert((network, length), i)
            entries.append(((network, length), i))
        # Later duplicate inserts overwrite: keep last per prefix.
        dedup = {}
        for key, value in entries:
            dedup[key] = value
        entries = [(k, v) for k, v in dedup.items()]
        for ip in ips:
            assert trie.lookup(ip) == _brute_force_lpm(entries, ip)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(PREFIXES, min_size=1, max_size=30))
    def test_items_roundtrip(self, raw_prefixes):
        trie = PrefixTrie()
        expected = {}
        for i, (base, length) in enumerate(raw_prefixes):
            network = network_of(base, length)
            trie.insert((network, length), i)
            expected[(network, length)] = i
        assert dict(trie.items()) == expected
        assert len(trie) == len(expected)


class TestScale:
    def test_many_inserts(self):
        rng = random.Random(3)
        trie = PrefixTrie()
        inserted = {}
        for _ in range(3000):
            base = rng.randrange(IPV4_SPACE)
            length = rng.randint(8, 24)
            network = network_of(base, length)
            trie.insert((network, length), (network, length))
            inserted[(network, length)] = True
        assert len(trie) == len(inserted)
        # Every stored prefix must find itself.
        for network, length in list(inserted)[:200]:
            (got_net, got_len), _ = trie.longest_match(network)
            assert got_len >= length or (got_net, got_len) in inserted
