"""Tests for IPv4 address/prefix primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.net.ip import (
    IPV4_SPACE,
    IPv4Address,
    IPv4Prefix,
    coerce_ip,
    ip_to_str,
    mask_of,
    network_of,
    parse_ip,
    parse_prefix,
    slash16_of,
    slash24_of,
)

IP_INTS = st.integers(min_value=0, max_value=IPV4_SPACE - 1)


class TestParseIp:
    def test_basic(self):
        assert parse_ip("8.8.8.8") == 0x08080808

    def test_edges(self):
        assert parse_ip("0.0.0.0") == 0
        assert parse_ip("255.255.255.255") == IPV4_SPACE - 1

    @pytest.mark.parametrize("bad", [
        "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.x", "", "1..2.3",
        "1.2.3.1234", "-1.2.3.4",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_ip(bad)

    @given(IP_INTS)
    def test_roundtrip(self, value):
        assert parse_ip(ip_to_str(value)) == value

    def test_ip_to_str_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ip_to_str(IPV4_SPACE)
        with pytest.raises(ValueError):
            ip_to_str(-1)


class TestCoerce:
    def test_from_int(self):
        assert coerce_ip(5) == 5

    def test_from_str(self):
        assert coerce_ip("1.2.3.4") == 0x01020304

    def test_from_address(self):
        assert coerce_ip(IPv4Address("1.2.3.4")) == 0x01020304

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            coerce_ip(IPV4_SPACE)


class TestMasks:
    def test_mask_of(self):
        assert mask_of(0) == 0
        assert mask_of(24) == 0xFFFFFF00
        assert mask_of(32) == 0xFFFFFFFF

    def test_mask_rejects_bad_length(self):
        with pytest.raises(ValueError):
            mask_of(33)

    @given(IP_INTS)
    def test_slash24(self, ip):
        assert slash24_of(ip) == network_of(ip, 24)
        assert slash24_of(ip) <= ip

    @given(IP_INTS)
    def test_slash16(self, ip):
        assert slash16_of(ip) == network_of(ip, 16)


class TestIPv4Address:
    def test_equality_and_hash(self):
        a = IPv4Address("10.0.0.1")
        b = IPv4Address(parse_ip("10.0.0.1"))
        assert a == b
        assert hash(a) == hash(b)

    def test_equality_with_int(self):
        assert IPv4Address("0.0.0.5") == 5

    def test_ordering(self):
        assert IPv4Address("1.0.0.0") < IPv4Address("2.0.0.0")
        assert IPv4Address("2.0.0.0") >= IPv4Address("1.0.0.0")

    def test_str(self):
        assert str(IPv4Address("192.0.2.1")) == "192.0.2.1"

    def test_immutable(self):
        addr = IPv4Address("1.2.3.4")
        with pytest.raises(AttributeError):
            addr.value = 5

    def test_slash24_property(self):
        assert str(IPv4Address("10.1.2.3").slash24) == "10.1.2.0/24"

    def test_in_prefix(self):
        assert IPv4Address("10.1.2.3").in_prefix(IPv4Prefix.parse("10.0.0.0/8"))


class TestIPv4Prefix:
    def test_parse(self):
        prefix = IPv4Prefix.parse("192.0.2.0/24")
        assert prefix.length == 24
        assert prefix.num_addresses == 256

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            IPv4Prefix(parse_ip("192.0.2.1"), 24)

    def test_containing_strips_host_bits(self):
        prefix = IPv4Prefix.containing("192.0.2.77", 24)
        assert str(prefix) == "192.0.2.0/24"

    def test_contains_ip(self):
        prefix = IPv4Prefix.parse("10.0.0.0/8")
        assert prefix.contains_ip("10.255.255.255")
        assert not prefix.contains_ip("11.0.0.0")

    def test_contains_prefix(self):
        outer = IPv4Prefix.parse("10.0.0.0/8")
        inner = IPv4Prefix.parse("10.1.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)

    def test_contains_operator(self):
        assert "10.0.0.1" in IPv4Prefix.parse("10.0.0.0/24")

    def test_first_last(self):
        prefix = IPv4Prefix.parse("192.0.2.0/30")
        assert prefix.first == parse_ip("192.0.2.0")
        assert prefix.last == parse_ip("192.0.2.3")

    def test_subnets(self):
        subs = list(IPv4Prefix.parse("10.0.0.0/23").subnets(24))
        assert [str(s) for s in subs] == ["10.0.0.0/24", "10.0.1.0/24"]

    def test_subnets_rejects_shorter(self):
        with pytest.raises(ValueError):
            list(IPv4Prefix.parse("10.0.0.0/24").subnets(23))

    def test_addresses_iteration(self):
        addrs = list(IPv4Prefix.parse("192.0.2.0/30").addresses())
        assert len(addrs) == 4

    def test_random_ip_inside(self, rng):
        prefix = IPv4Prefix.parse("10.20.30.0/24")
        for _ in range(50):
            assert prefix.contains_ip(prefix.random_ip(rng))

    def test_equality_hash(self):
        a = IPv4Prefix.parse("10.0.0.0/8")
        b = IPv4Prefix.parse("10.0.0.0/8")
        assert a == b and hash(a) == hash(b)

    def test_ordering(self):
        assert IPv4Prefix.parse("10.0.0.0/8") < IPv4Prefix.parse("11.0.0.0/8")

    def test_slash9_plus_slash10_coverage(self):
        # The telescope ratio the paper's footnote relies on.
        total = (IPv4Prefix.parse("44.0.0.0/9").num_addresses
                 + IPv4Prefix.parse("44.128.0.0/10").num_addresses)
        assert IPV4_SPACE / total == pytest.approx(341.33, abs=0.01)

    @given(IP_INTS, st.integers(min_value=0, max_value=32))
    def test_containing_always_contains(self, ip, length):
        prefix = IPv4Prefix.containing(ip, length)
        assert prefix.contains_ip(ip)


class TestParsePrefix:
    def test_canonicalizes(self):
        base, length = parse_prefix("10.1.2.3/8")
        assert ip_to_str(base) == "10.0.0.0"
        assert length == 8

    @pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/ab", "10.0.0.0/"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_prefix(bad)
