"""Tests for AS/Organization types and port/protocol constants."""

import pytest

from repro.net.asn import AS, Organization
from repro.net.ip import IPv4Prefix
from repro.net.ports import (
    PORT_DNS,
    PORT_HTTP,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    port_name,
    proto_name,
    validate_port,
    validate_proto,
)


class TestOrganization:
    def test_str(self):
        org = Organization("o1", "Acme", "US")
        assert str(org) == "Acme"

    def test_frozen(self):
        org = Organization("o1", "Acme", "US")
        with pytest.raises(AttributeError):
            org.name = "Other"


class TestAS:
    def _make(self, number=64512):
        return AS(number=number, org=Organization("o1", "Acme", "NL"))

    def test_country_defaults_to_org(self):
        assert self._make().country == "NL"

    def test_rejects_bad_asn(self):
        with pytest.raises(ValueError):
            AS(number=0, org=Organization("o", "x"))

    def test_announce_idempotent(self):
        asys = self._make()
        prefix = IPv4Prefix.parse("10.0.0.0/8")
        asys.announce(prefix)
        asys.announce(prefix)
        assert asys.prefixes == [prefix]

    def test_originates(self):
        asys = self._make()
        asys.announce(IPv4Prefix.parse("10.0.0.0/8"))
        assert asys.originates("10.1.2.3")
        assert not asys.originates("11.0.0.0")

    def test_address_count(self):
        asys = self._make()
        asys.announce(IPv4Prefix.parse("10.0.0.0/24"))
        asys.announce(IPv4Prefix.parse("10.0.1.0/24"))
        assert asys.address_count == 512

    def test_equality_by_number(self):
        assert self._make(1) == AS(number=1, org=Organization("o2", "Other"))
        assert self._make(1) != self._make(2)

    def test_hashable(self):
        assert len({self._make(1), self._make(1)}) == 1


class TestPorts:
    def test_constants(self):
        assert PORT_DNS == 53
        assert PORT_HTTP == 80
        assert (PROTO_ICMP, PROTO_TCP, PROTO_UDP) == (1, 6, 17)

    def test_proto_name(self):
        assert proto_name(PROTO_TCP) == "TCP"
        assert proto_name(99) == "proto99"

    def test_port_name(self):
        assert port_name(53) == "DNS"
        assert port_name(12345) == "12345"

    def test_validate_port(self):
        assert validate_port(0) == 0
        assert validate_port(65535) == 65535
        with pytest.raises(ValueError):
            validate_port(65536)
        with pytest.raises(ValueError):
            validate_port(-1)

    def test_validate_proto(self):
        assert validate_proto(6) == 6
        with pytest.raises(ValueError):
            validate_proto(256)
