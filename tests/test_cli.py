"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import build_parser, main
from repro.obs import SNAPSHOT_SCHEMA

FAST_ARGS = ["--domains", "700", "--attacks-per-month", "60",
             "--start", "2021-03-01", "--end", "2021-04-01"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.domains == 8000
        assert args.seed == 42

    def test_case_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["case", "nonexistent"])

    def test_export_output(self):
        args = build_parser().parse_args(["export", "--output", "/tmp/x"])
        assert args.output == "/tmp/x"

    def test_telemetry_flags_on_every_subcommand(self):
        for argv in (["report"], ["export"], ["visibility"],
                     ["case", "transip"]):
            args = build_parser().parse_args(
                argv + ["--trace", "--metrics-out", "/tmp/m.json",
                        "--journal", "/tmp/j.jsonl", "--profile"])
            assert args.trace is True
            assert args.metrics_out == "/tmp/m.json"
            assert args.journal == "/tmp/j.jsonl"
            assert args.profile is True


class TestCommands:
    def test_report_runs(self, capsys):
        assert main(["report"] + FAST_ARGS) == 0
        out = capsys.readouterr().out
        assert "Monthly attack activity" in out
        assert "Resilience efficacy" in out

    def test_export_writes_datasets(self, tmp_path, capsys):
        out_dir = str(tmp_path / "datasets")
        assert main(["export", "--output", out_dir] + FAST_ARGS) == 0
        files = set(os.listdir(out_dir))
        assert "rsdos_records.csv" in files
        assert "prefix2as.tsv" in files
        assert "as2org.jsonl" in files
        assert "anycast_census.jsonl" in files
        assert "open_resolvers.json" in files

    def test_visibility_runs(self, capsys):
        assert main(["visibility"] + FAST_ARGS) == 0
        out = capsys.readouterr().out
        assert "Telescope visibility" in out
        assert "randomly spoofed" in out


class TestTelemetryFlags:
    def test_metrics_out_writes_a_parseable_snapshot(self, tmp_path, capsys):
        path = str(tmp_path / "metrics.json")
        assert main(["report", "--metrics-out", path, "--trace"]
                    + FAST_ARGS) == 0
        captured = capsys.readouterr()
        with open(path) as fp:
            snap = json.load(fp)
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["metrics"]["counters"]  # non-empty
        names = [s["name"] for s in snap["spans"]]
        assert names[0] == "study"
        # --trace prints the phase tree on stderr, never stdout.
        assert "phase timings:" in captured.err
        assert "phase timings:" not in captured.out

    def test_stdout_is_byte_identical_with_and_without_flags(
            self, tmp_path, capsys):
        assert main(["report"] + FAST_ARGS) == 0
        plain = capsys.readouterr().out
        assert main(["report", "--trace", "--metrics-out",
                     str(tmp_path / "m.json")] + FAST_ARGS) == 0
        traced = capsys.readouterr().out
        assert traced == plain

    def test_metrics_out_creates_parent_dirs(self, tmp_path, capsys):
        path = str(tmp_path / "deep" / "nested" / "metrics.json")
        assert main(["report", "--metrics-out", path] + FAST_ARGS) == 0
        capsys.readouterr()
        with open(path) as fp:
            assert json.load(fp)["schema"] == SNAPSHOT_SCHEMA

    def test_journal_flag_writes_a_complete_journal(self, tmp_path, capsys):
        from repro.obs import read_journal

        path = str(tmp_path / "run.jsonl")
        assert main(["report", "--journal", path, "--profile"]
                    + FAST_ARGS) == 0
        captured = capsys.readouterr()
        assert f"run journal written to {path}" in captured.err
        records = read_journal(path)
        types = [r["type"] for r in records]
        assert types[0] == "journal.open"
        assert types[-1] == "journal.close"
        assert "run.start" in types and "run.finish" in types
        # The CLI owns the journal, so the report's lazy analyses land
        # in the same file after the pipeline phases.
        finished = [r["phase"] for r in records
                    if r["type"] == "phase.finish"]
        assert "crawl" in finished
        assert any(p.startswith("analysis.") for p in finished)

    def test_journal_and_profile_stdout_byte_identical(self, tmp_path,
                                                       capsys):
        assert main(["report"] + FAST_ARGS) == 0
        plain = capsys.readouterr().out
        assert main(["report", "--journal", str(tmp_path / "j.jsonl"),
                     "--profile"] + FAST_ARGS) == 0
        observed = capsys.readouterr().out
        assert observed == plain


class TestCacheFlags:
    def test_cache_dir_on_every_study_subcommand(self):
        for argv in (["report"], ["export"], ["visibility"]):
            args = build_parser().parse_args(argv + ["--cache-dir", "/tmp/c"])
            assert args.cache_dir == "/tmp/c"

    def test_cache_subcommand_parses(self):
        args = build_parser().parse_args(
            ["cache", "gc", "--cache-dir", "/tmp/c", "--max-bytes", "100"])
        assert args.action == "gc"
        assert args.max_bytes == 100

    def test_warm_run_stdout_byte_identical_and_hits(self, tmp_path, capsys):
        """The CI cache job's contract, asserted in-process: the second
        run over the same --cache-dir hits and prints identical bytes."""
        cache_dir = str(tmp_path / "deep" / "cache")  # parent dirs created
        cold_metrics = str(tmp_path / "cold.json")
        warm_metrics = str(tmp_path / "warm.json")
        assert main(["report", "--cache-dir", cache_dir,
                     "--metrics-out", cold_metrics] + FAST_ARGS) == 0
        cold_out = capsys.readouterr().out
        assert main(["report", "--cache-dir", cache_dir,
                     "--metrics-out", warm_metrics] + FAST_ARGS) == 0
        warm_out = capsys.readouterr().out
        assert warm_out == cold_out
        with open(cold_metrics) as fp:
            cold_counters = json.load(fp)["metrics"]["counters"]
        with open(warm_metrics) as fp:
            warm_counters = json.load(fp)["metrics"]["counters"]
        assert not any(k.startswith("repro.cache.hits")
                       for k in cold_counters)
        hits = sum(v for k, v in warm_counters.items()
                   if k.startswith("repro.cache.hits"))
        assert hits == 4  # telescope, crawl, join, events

    def test_cache_ls_gc_clear(self, tmp_path, capsys):
        from repro.artifacts.store import ArtifactStore

        cache_dir = str(tmp_path / "cache")
        store = ArtifactStore(cache_dir)
        store.put("aa" * 32, b"x" * 30, phase="telescope")
        store.put("bb" * 32, b"y" * 30, phase="crawl")

        assert main(["cache", "ls", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "telescope" in out and "crawl" in out
        assert "2 entries" in out and "60 bytes" in out

        assert main(["cache", "gc", "--cache-dir", cache_dir,
                     "--max-bytes", "30"]) == 0
        assert "evicted 1 entries (30 bytes)" in capsys.readouterr().out
        assert len(store) == 1

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared 1 entries" in capsys.readouterr().out
        assert len(store) == 0

    def test_cache_requires_cache_dir(self, capsys):
        assert main(["cache", "ls"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_cache_gc_requires_max_bytes(self, tmp_path, capsys):
        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_cache_ls_sorted_and_human_sizes(self, tmp_path, capsys):
        from repro.artifacts.store import ArtifactStore

        cache_dir = str(tmp_path / "cache")
        store = ArtifactStore(cache_dir)
        # Insert out of key order; ls must list in key order.
        store.put("cc" * 32, b"z" * 2048, phase="join")
        store.put("aa" * 32, b"x" * 30, phase="telescope")

        assert main(["cache", "ls", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert out.index("aa" * 8) < out.index("cc" * 8)
        assert "2.0 KiB" in out
        assert "30 B" in out

    def test_cache_ls_is_deterministic(self, tmp_path, capsys):
        from repro.artifacts.store import ArtifactStore

        cache_dir = str(tmp_path / "cache")
        store = ArtifactStore(cache_dir)
        store.put("bb" * 32, b"y", phase="crawl")
        store.put("aa" * 32, b"x", phase="telescope")
        assert main(["cache", "ls", "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert main(["cache", "ls", "--cache-dir", cache_dir]) == 0
        assert capsys.readouterr().out == first

    def test_cache_ls_json(self, tmp_path, capsys):
        from repro.artifacts.store import ArtifactStore

        cache_dir = str(tmp_path / "cache")
        store = ArtifactStore(cache_dir)
        store.put("bb" * 32, b"y" * 10, phase="crawl")
        store.put("aa" * 32, b"x" * 30, phase="telescope")

        assert main(["cache", "ls", "--cache-dir", cache_dir,
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_entries"] == 2
        assert doc["total_bytes"] == 40
        assert [e["key"] for e in doc["entries"]] == \
            ["aa" * 32, "bb" * 32]
        assert doc["entries"][0]["phase"] == "telescope"
        assert doc["entries"][0]["size"] == 30


class TestServeCommand:
    SERVE_ARGS = ["--seed", "11", "--domains", "300",
                  "--attacks-per-month", "150",
                  "--start", "2021-03-01", "--end", "2021-03-03"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--cache-dir", "/tmp/s"])
        assert args.cache_dir == "/tmp/s"
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.build_only is False
        assert args.plan is False
        assert args.edit_scale == 2.0

    def test_cache_dir_is_required(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_plan_prints_deterministic_json(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "shards")
        argv = ["serve", "--plan", "--cache-dir", cache_dir]
        assert main(argv + self.SERVE_ARGS) == 0
        first = capsys.readouterr().out
        assert main(argv + self.SERVE_ARGS) == 0
        assert capsys.readouterr().out == first
        plan = json.loads(first)
        assert [d["day"] for d in plan] == ["2021-03-01", "2021-03-02"]
        assert all(set(d["actions"].values()) == {"compute"}
                   for d in plan)

    def test_build_only_cold_then_warm(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "shards")
        argv = ["serve", "--build-only", "--cache-dir", cache_dir]
        assert main(argv + self.SERVE_ARGS) == 0
        cold = capsys.readouterr().out
        assert "(8 partitions computed, 0 reused)" in cold
        assert main(argv + self.SERVE_ARGS) == 0
        warm = capsys.readouterr().out
        assert warm.count("computed 0") == 4
        # A third run is byte-identical to the second.
        assert main(argv + self.SERVE_ARGS) == 0
        assert capsys.readouterr().out == warm

    def test_edit_day_recomputes_a_bounded_subset(self, tmp_path,
                                                  capsys):
        cache_dir = str(tmp_path / "shards")
        argv = ["serve", "--build-only", "--cache-dir", cache_dir]
        assert main(argv + self.SERVE_ARGS) == 0
        capsys.readouterr()
        assert main(argv + self.SERVE_ARGS
                    + ["--edit-day", "2021-03-02",
                       "--edit-scale", "3.0"]) == 0
        out = capsys.readouterr().out
        # Something recomputed, something reused: the edit must not
        # flush the whole store.
        assert "0 reused)" not in out
        assert "(0 partitions computed" not in out
    """``repro graph`` prints the declared DAG: every phase exactly
    once, edges matching the declared inputs."""

    def test_text_lists_every_phase_exactly_once(self, capsys):
        from repro.core.pipeline import study_graph

        assert main(["graph"]) == 0
        out = capsys.readouterr().out
        graph = study_graph()
        for phase in graph.phases:
            heads = [line for line in out.splitlines()
                     if line.strip().startswith(f"{phase.name} ")]
            assert len(heads) == 1, phase.name

    def test_text_edges_match_declared_inputs(self, capsys):
        from repro.core.pipeline import study_graph

        assert main(["graph"]) == 0
        out = capsys.readouterr().out
        for phase in study_graph().phases:
            line = next(l for l in out.splitlines()
                        if l.strip().startswith(f"{phase.name} "))
            deps = line.split("<-", 1)[1].split("[")[0].strip()
            expected = ", ".join(phase.inputs) if phase.inputs else "-"
            assert deps == expected, phase.name

    def test_dot_output_has_every_node_and_edge(self, capsys):
        from repro.core.pipeline import study_graph

        assert main(["graph", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        graph = study_graph()
        for phase in graph.phases:
            assert out.count(f'"{phase.name}" [shape=') == 1
        for producer, consumer, _slot in graph.edges():
            assert f'"{producer}" -> "{consumer}"' in out

    def test_no_analyses_flag_prints_pipeline_only(self, capsys):
        assert main(["graph", "--no-analyses"]) == 0
        out = capsys.readouterr().out
        assert "telescope" in out
        assert "analysis." not in out


REACTIVE_FAST = ["reactive", "--domains", "300", "--triggers", "30",
                 "--probes-per-window", "3", "--probe-budget", "20",
                 "--post-attack-hours", "1"]


class TestReactiveCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["reactive"])
        assert args.domains == 600
        assert args.triggers == 200
        assert args.probes_per_window == 10
        assert args.capacity is None
        assert args.backpressure == "block"
        assert args.chaos is None

    def test_parser_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reactive", "--backpressure", "nope"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reactive", "--chaos", "nope"])

    def test_reactive_runs(self, capsys):
        assert main(REACTIVE_FAST) == 0
        out = capsys.readouterr().out
        assert "reactive: triggers=30" in out
        assert "unaccounted=0" in out
        assert "store sha256:" in out

    def test_chaos_stdout_is_byte_identical(self, capsys):
        """Exactly-once recovery, observable from the outside: the
        deterministic summary on stdout must not change under chaos."""
        assert main(REACTIVE_FAST) == 0
        clean = capsys.readouterr()
        assert main(REACTIVE_FAST + ["--chaos", "heavy",
                                     "--chaos-seed", "3"]) == 0
        chaotic = capsys.readouterr()
        assert chaotic.out == clean.out
        assert "kills=" in chaotic.err
        assert "worker.crash=" in chaotic.err

    def test_metrics_out(self, tmp_path, capsys):
        path = str(tmp_path / "reactive-metrics.json")
        assert main(REACTIVE_FAST + ["--metrics-out", path]) == 0
        with open(path) as fh:
            metrics = json.load(fh)["metrics"]
        assert metrics["counters"]["repro.reactive.triggers"] == 30
        assert "repro.reactive.trigger_latency_s" in metrics["histograms"]


class TestPacksCommand:
    def test_packs_ls_lists_every_registered_pack(self, capsys):
        from repro.attacks.packs import available_packs

        assert main(["packs", "ls"]) == 0
        out = capsys.readouterr().out
        assert "Registered scenario packs" in out
        for name in available_packs():
            assert name in out
        assert "volumetric (default)" in out

    def test_packs_requires_an_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["packs"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["packs", "rm"])

    def test_scenario_pack_flag_on_study_subcommands(self):
        for argv in (["report"], ["export"], ["visibility"]):
            args = build_parser().parse_args(
                argv + ["--scenario-pack", "amplification"])
            assert args.scenario_pack == "amplification"
        assert build_parser().parse_args(["report"]).scenario_pack \
            == "volumetric"

    def test_unknown_pack_is_rejected_with_the_listing(self, capsys):
        from repro.attacks.packs import available_packs

        assert main(["report", "--scenario-pack", "slowloris"]
                    + FAST_ARGS) == 2
        err = capsys.readouterr().err
        assert "unknown scenario pack 'slowloris'" in err
        for name in available_packs():
            assert name in err

    def test_amplification_run_prints_the_pack_section(self, capsys):
        assert main(["report", "--scenario-pack", "amplification"]
                    + FAST_ARGS) == 0
        out = capsys.readouterr().out
        assert "Amplification pack (reflector-query branch)" in out

    def test_volumetric_flag_is_byte_identical_to_default(self, capsys):
        assert main(["report"] + FAST_ARGS) == 0
        plain = capsys.readouterr().out
        assert main(["report", "--scenario-pack", "volumetric"]
                    + FAST_ARGS) == 0
        assert capsys.readouterr().out == plain
