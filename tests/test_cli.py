"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import build_parser, main
from repro.obs import SNAPSHOT_SCHEMA

FAST_ARGS = ["--domains", "700", "--attacks-per-month", "60",
             "--start", "2021-03-01", "--end", "2021-04-01"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.domains == 8000
        assert args.seed == 42

    def test_case_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["case", "nonexistent"])

    def test_export_output(self):
        args = build_parser().parse_args(["export", "--output", "/tmp/x"])
        assert args.output == "/tmp/x"

    def test_telemetry_flags_on_every_subcommand(self):
        for argv in (["report"], ["export"], ["visibility"],
                     ["case", "transip"]):
            args = build_parser().parse_args(
                argv + ["--trace", "--metrics-out", "/tmp/m.json"])
            assert args.trace is True
            assert args.metrics_out == "/tmp/m.json"


class TestCommands:
    def test_report_runs(self, capsys):
        assert main(["report"] + FAST_ARGS) == 0
        out = capsys.readouterr().out
        assert "Monthly attack activity" in out
        assert "Resilience efficacy" in out

    def test_export_writes_datasets(self, tmp_path, capsys):
        out_dir = str(tmp_path / "datasets")
        assert main(["export", "--output", out_dir] + FAST_ARGS) == 0
        files = set(os.listdir(out_dir))
        assert "rsdos_records.csv" in files
        assert "prefix2as.tsv" in files
        assert "as2org.jsonl" in files
        assert "anycast_census.jsonl" in files
        assert "open_resolvers.json" in files

    def test_visibility_runs(self, capsys):
        assert main(["visibility"] + FAST_ARGS) == 0
        out = capsys.readouterr().out
        assert "Telescope visibility" in out
        assert "randomly spoofed" in out


class TestTelemetryFlags:
    def test_metrics_out_writes_a_parseable_snapshot(self, tmp_path, capsys):
        path = str(tmp_path / "metrics.json")
        assert main(["report", "--metrics-out", path, "--trace"]
                    + FAST_ARGS) == 0
        captured = capsys.readouterr()
        with open(path) as fp:
            snap = json.load(fp)
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["metrics"]["counters"]  # non-empty
        names = [s["name"] for s in snap["spans"]]
        assert names[0] == "study"
        # --trace prints the phase tree on stderr, never stdout.
        assert "phase timings:" in captured.err
        assert "phase timings:" not in captured.out

    def test_stdout_is_byte_identical_with_and_without_flags(
            self, tmp_path, capsys):
        assert main(["report"] + FAST_ARGS) == 0
        plain = capsys.readouterr().out
        assert main(["report", "--trace", "--metrics-out",
                     str(tmp_path / "m.json")] + FAST_ARGS) == 0
        traced = capsys.readouterr().out
        assert traced == plain
