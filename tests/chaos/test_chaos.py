"""Tests for fault policies and the seeded injector."""

import math
import random

import pytest

from repro.chaos import ChaosConfig, FaultInjector, FaultPolicy, TransientFault
from repro.chaos.faults import TruncatedRecord, corrupt_attack, truncate_attack
from repro.dns.rcode import Rcode
from repro.dns.server import ServerReply
from repro.openintel.storage import MeasurementStore
from repro.dns.rcode import ResponseStatus
from repro.streaming.processors import MapProcessor, Record
from repro.telescope.rsdos import InferredAttack, attack_problem
from repro.util.timeutil import DAY


def make_attack(victim_ip=0x01020304, start=1000, end=4000, **kwargs):
    defaults = dict(victim_ip=victim_ip, start=start, end=end,
                    n_packets=100, max_ppm=50.0, max_slash16=3,
                    n_unique_sources=40, proto=6, first_port=53,
                    n_ports=1, n_windows=4)
    defaults.update(kwargs)
    return InferredAttack(**defaults)


class TestFaultPolicy:
    def test_null_by_default(self):
        assert FaultPolicy().is_null

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            FaultPolicy(drop_p=1.5)
        with pytest.raises(ValueError):
            FaultPolicy(corrupt_p=-0.1)

    def test_rejects_skew_without_bound(self):
        with pytest.raises(ValueError):
            FaultPolicy(clock_skew_p=0.1)

    def test_rejects_bad_burst(self):
        with pytest.raises(ValueError):
            FaultPolicy(burst_len=0)

    def test_scaled_caps_at_one(self):
        policy = FaultPolicy(drop_p=0.5).scaled(4.0)
        assert policy.drop_p == 1.0

    def test_presets_ordered_by_severity(self):
        light = ChaosConfig.preset("light")
        heavy = ChaosConfig.preset("heavy")
        assert light.feed.drop_p < heavy.feed.drop_p
        assert not light.is_null

    def test_preset_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            ChaosConfig.preset("apocalyptic")

    def test_describe_mentions_active_surfaces(self):
        text = ChaosConfig.preset("moderate").describe()
        assert "feed" in text and "transport" in text


class TestCorruptions:
    def test_corrupt_attack_always_invalid(self):
        rng = random.Random(0)
        for _ in range(50):
            bad = corrupt_attack(make_attack(), rng)
            assert attack_problem(bad) is not None

    def test_truncate_attack_unparseable(self):
        rng = random.Random(0)
        wreck = truncate_attack(make_attack(), rng)
        assert isinstance(wreck, TruncatedRecord)
        assert attack_problem(wreck) is not None
        assert wreck.n_bytes == len(wreck.payload)

    def test_valid_attack_passes(self):
        assert attack_problem(make_attack()) is None

    def test_attack_problem_catches_each_field(self):
        assert attack_problem("junk")
        assert attack_problem(make_attack(victim_ip=2 ** 32))
        assert attack_problem(make_attack(start=4000, end=1000))
        assert attack_problem(make_attack(max_ppm=float("nan")))
        assert attack_problem(make_attack(n_packets=-1))


class TestInjectorDeterminism:
    def test_same_seed_same_faults(self):
        attacks = [make_attack(victim_ip=i + 1, start=i * 100, end=i * 100 + 600)
                   for i in range(200)]
        a = FaultInjector(ChaosConfig.preset("moderate", seed=9)).wrap_feed(attacks)
        b = FaultInjector(ChaosConfig.preset("moderate", seed=9)).wrap_feed(attacks)
        assert a == b

    def test_different_seed_different_faults(self):
        attacks = [make_attack(victim_ip=i + 1, start=i * 100, end=i * 100 + 600)
                   for i in range(200)]
        a = FaultInjector(ChaosConfig.preset("moderate", seed=1)).wrap_feed(attacks)
        b = FaultInjector(ChaosConfig.preset("moderate", seed=2)).wrap_feed(attacks)
        assert a != b

    def test_null_policy_returns_input_unchanged(self):
        attacks = [make_attack()]
        injector = FaultInjector(ChaosConfig(seed=3))
        assert injector.wrap_feed(attacks) == attacks
        assert injector.events == []

    def test_null_transport_wrap_is_identity(self):
        def transport(ns_ip, qname, qtype, when):
            return ServerReply.ok(10.0)

        injector = FaultInjector(ChaosConfig(seed=3))
        assert injector.wrap_transport(transport) is transport


class TestTransportFaults:
    def test_drops_and_corruption_logged(self):
        config = ChaosConfig(seed=4, transport=FaultPolicy(drop_p=0.3,
                                                           corrupt_p=0.2))
        injector = FaultInjector(config)
        wrapped = injector.wrap_transport(
            lambda ns_ip, qname, qtype, when: ServerReply.ok(10.0))
        replies = [wrapped(1, "example.com", None, 0.0) for _ in range(300)]
        dropped = sum(1 for r in replies if not r.answered)
        servfails = sum(1 for r in replies if r.answered
                        and r.rcode is Rcode.SERVFAIL)
        assert 40 < dropped < 160
        assert servfails > 10
        counts = injector.counts
        assert counts[("transport", "drop")] == dropped
        assert counts[("transport", "corrupt")] == servfails

    def test_burst_mode_runs(self):
        config = ChaosConfig(seed=4, transport=FaultPolicy(drop_p=0.05,
                                                           burst_len=4))
        injector = FaultInjector(config)
        wrapped = injector.wrap_transport(
            lambda ns_ip, qname, qtype, when: ServerReply.ok(10.0))
        outcomes = [wrapped(1, "q", None, 0.0).answered for _ in range(500)]
        # Count maximal runs of consecutive drops: bursts mean at least
        # one run of the full burst length.
        runs, current = [], 0
        for answered in outcomes:
            if not answered:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
        assert runs and max(runs) >= 4

    def test_clock_skew_perturbs_when(self):
        seen = []
        config = ChaosConfig(seed=8, transport=FaultPolicy(
            clock_skew_p=1.0, max_clock_skew_s=60))
        wrapped = FaultInjector(config).wrap_transport(
            lambda ns_ip, qname, qtype, when: seen.append(when) or ServerReply.ok(1.0))
        wrapped(1, "q", None, 1_000_000.0)
        assert seen and seen[0] != 1_000_000.0
        assert abs(seen[0] - 1_000_000.0) <= 60


class TestProcessorFaults:
    def test_transient_exceptions_raised(self):
        config = ChaosConfig(seed=5, processor=FaultPolicy(exception_p=1.0))
        injector = FaultInjector(config)
        wrapped = injector.wrap_processor(MapProcessor(lambda x: x))
        with pytest.raises(TransientFault):
            list(wrapped.process(Record(0, 0, "x")))

    def test_null_processor_wrap_is_identity(self):
        inner = MapProcessor(lambda x: x)
        assert FaultInjector(ChaosConfig(seed=5)).wrap_processor(inner) is inner


class TestStoreFaults:
    def _filled_store(self):
        store = MeasurementStore()
        for day in range(10):
            for nsset in range(5):
                store.add_fast(nsset, day * DAY + 100, ResponseStatus.OK,
                               20.0, dense=True)
        return store

    def test_missing_days_removed(self):
        store = self._filled_store()
        n_before = len(store.daily)
        config = ChaosConfig(seed=6, store=FaultPolicy(missing_day_p=0.3))
        injector = FaultInjector(config)
        injector.corrupt_store(store)
        assert len(store.daily) < n_before
        assert injector.counts[("store", "missing_day")] == \
            n_before - len(store.daily)

    def test_corrupt_buckets_fail_validation(self):
        store = self._filled_store()
        config = ChaosConfig(seed=6, store=FaultPolicy(corrupt_p=0.5))
        FaultInjector(config).corrupt_store(store)
        invalid = [agg for agg in store.buckets.values() if not agg.is_valid]
        assert invalid
        # Degradation contract: consumers skip invalid aggregates, so
        # the impact path never divides by a corrupt column (covered in
        # the metrics tests); here we only require detection.
        assert all(agg.is_valid for agg in store.daily.values())

    def test_null_store_policy_touches_nothing(self):
        store = self._filled_store()
        daily, buckets = dict(store.daily), dict(store.buckets)
        FaultInjector(ChaosConfig(seed=6)).corrupt_store(store)
        assert store.daily == daily and store.buckets == buckets


class TestIngestFaults:
    def test_corrupted_rows_rejected_and_counted(self):
        store = MeasurementStore()
        config = ChaosConfig(seed=9, ingest=FaultPolicy(corrupt_p=0.5))
        injector = FaultInjector(config)
        injector.wrap_store_ingest(store)
        for i in range(200):
            store.add_fast(1, i * 60, ResponseStatus.OK, 20.0, False)
        # Every fired fault makes the RTT NaN or negative, and the
        # ingest guard must reject exactly those rows — aggregates stay
        # clean, nothing is silently averaged in.
        assert store.n_rejected > 0
        assert store.n_rejected == injector.counts[("ingest", "corrupt")]
        assert store.n_measurements + store.n_rejected == 200
        for agg in store.daily.values():
            assert agg.is_valid

    def test_null_ingest_policy_leaves_store_unwrapped(self):
        store = MeasurementStore()
        FaultInjector(ChaosConfig(seed=9)).wrap_store_ingest(store)
        assert "add_fast" not in vars(store)

    def test_ingest_surface_reported(self):
        config = ChaosConfig(seed=9, ingest=FaultPolicy(corrupt_p=0.25))
        assert not config.is_null
        assert "ingest" in config.describe()


class TestHardenedFeed:
    def test_poison_records_dead_lettered_with_metadata(self):
        attacks = [make_attack(victim_ip=i + 1, start=i * 100,
                               end=i * 100 + 600) for i in range(300)]
        injector = FaultInjector(ChaosConfig.preset("heavy", seed=2))
        survivors = injector.harden_feed(attacks)
        assert survivors, "feed must not be wiped out"
        assert injector.dead_letters, "heavy chaos must dead-letter records"
        for letter in injector.dead_letters:
            assert letter.job == "feed-validate"
            assert letter.error
            assert letter.reason
            assert letter.attempts >= 1
        # Survivors are all valid records.
        for attack in survivors:
            assert attack_problem(attack) is None

    def test_summary_renders(self):
        injector = FaultInjector(ChaosConfig.preset("moderate", seed=2))
        injector.harden_feed([make_attack()])
        text = injector.summary()
        assert "faults injected" in text
        assert "feed-validate" in text
