"""Tests for the multi-process crawl and its worker-count invariance."""

import pytest

from repro.dns.resolver import ResolverConfig
from repro.openintel import platform as platform_mod
from repro.openintel.platform import (
    OpenIntelPlatform,
    _crawl_shard,
    run_parallel,
)
from repro.util.timeutil import DAY


@pytest.fixture(scope="module")
def serial_store(tiny_world):
    return OpenIntelPlatform(tiny_world).run()


@pytest.fixture(scope="module")
def parallel_store(tiny_world):
    # The world is built once and shared with the workers via fork.
    return run_parallel(tiny_world, n_workers=2)


class TestWorkerCountInvariance:
    def test_two_workers_bit_for_bit_equal_serial(self, serial_store,
                                                  parallel_store):
        # The tentpole contract: not statistically close — identical.
        assert parallel_store == serial_store

    def test_four_workers_bit_for_bit_equal_serial(self, tiny_world,
                                                   serial_store):
        assert run_parallel(tiny_world, n_workers=4) == serial_store

    def test_more_workers_than_domains_is_harmless(self, tiny_world):
        start = tiny_world.timeline.start
        platform = OpenIntelPlatform(tiny_world)
        serial = platform.run(start, start + DAY)
        wide = OpenIntelPlatform(tiny_world).run_parallel(
            3, start, start + DAY)
        assert wide == serial

    def test_serial_crawl_is_repeatable(self, tiny_world, serial_store):
        # Per-(domain, day) streams mean the crawl no longer consumes
        # the world's shared RNG state: same world, same store.
        assert OpenIntelPlatform(tiny_world).run() == serial_store

    def test_every_aggregate_column_matches(self, serial_store,
                                            parallel_store):
        for key, agg in serial_store.daily.items():
            other = parallel_store.daily[key]
            assert other.state() == agg.state(), key
        for key, agg in serial_store.buckets.items():
            other = parallel_store.buckets[key]
            assert other.state() == agg.state(), key

    def test_single_worker_is_the_serial_path(self, tiny_world,
                                              serial_store):
        assert run_parallel(tiny_world, n_workers=1) == serial_store

    def test_rejects_bad_worker_count(self, tiny_config):
        with pytest.raises(ValueError):
            run_parallel(tiny_config, n_workers=0)


class TestWorkerConfigFidelity:
    """The forked worker platform must match the serial one exactly."""

    CUSTOM = ResolverConfig(attempt_timeout_ms=900.0, max_timeout_ms=3600.0,
                            max_attempts=4, deadline_ms=9000.0)

    def test_worker_inherits_full_configuration(self, tiny_world):
        platform = OpenIntelPlatform(tiny_world, config=self.CUSTOM,
                                     keep_raw=True, dense_oversampling=3)
        platform_mod._FORK_PARENT = platform
        try:
            # Run the worker entry point in-process: with fork semantics
            # the worker platform *is* the parent object, so every
            # setting the serial crawl would use is what the shard uses.
            start = tiny_world.timeline.start
            store, raw, _stats, _capture = _crawl_shard(
                (0, 2, start, start + DAY))
        finally:
            platform_mod._FORK_PARENT = None
        worker_platform = platform  # fork: same object in the child
        assert worker_platform.config == self.CUSTOM
        assert worker_platform.keep_raw is True
        assert worker_platform.dense_oversampling == 3
        assert store.n_measurements > 0
        assert raw, "keep_raw must be honoured by the shard"

    def test_non_default_settings_survive_the_fork(self, tiny_world):
        # End-to-end: a custom resolver config changes measured values
        # (shorter deadline => different timeout RTTs), and the parallel
        # crawl must reproduce the serial run of the *same* settings.
        start = tiny_world.timeline.start
        end = start + 2 * DAY
        serial = OpenIntelPlatform(
            tiny_world, config=self.CUSTOM, keep_raw=True,
            dense_oversampling=3).run(start, end)
        parallel_platform = OpenIntelPlatform(
            tiny_world, config=self.CUSTOM, keep_raw=True,
            dense_oversampling=3)
        parallel = parallel_platform.run_parallel(2, start, end)
        assert parallel == serial
        # ... and the settings demonstrably mattered: a default-config
        # crawl of the same window differs (oversampling changes the
        # measurement count), so the workers cannot have silently
        # rebuilt a default platform.
        default_serial = OpenIntelPlatform(tiny_world).run(start, end)
        assert parallel.n_measurements != default_serial.n_measurements

    def test_keep_raw_rows_invariant_to_worker_count(self, tiny_world):
        start = tiny_world.timeline.start
        end = start + 2 * DAY
        serial_platform = OpenIntelPlatform(tiny_world, keep_raw=True)
        serial_platform.run(start, end)
        parallel_platform = OpenIntelPlatform(tiny_world, keep_raw=True)
        parallel_platform.run_parallel(2, start, end)
        key = lambda m: (m.ts, m.domain_id)  # noqa: E731
        assert sorted(serial_platform.raw, key=key) == parallel_platform.raw


class TestParallelMechanics:
    def test_progress_reports_shard_completion(self, tiny_world):
        seen = []
        platform = OpenIntelPlatform(tiny_world)
        start = tiny_world.timeline.start
        platform.run_parallel(2, start, start + DAY,
                              progress=lambda done, n: seen.append((done, n)))
        assert seen == [(1, 2), (2, 2)]

    def test_parent_store_accumulates(self, tiny_world):
        platform = OpenIntelPlatform(tiny_world)
        start = tiny_world.timeline.start
        result = platform.run_parallel(2, start, start + DAY)
        assert result is platform.store
        assert result.n_measurements > 0

    def test_method_rejects_bad_worker_count(self, tiny_world):
        with pytest.raises(ValueError):
            OpenIntelPlatform(tiny_world).run_parallel(0)
