"""Tests for the multi-process crawl."""

import pytest

from repro.openintel.platform import OpenIntelPlatform, run_parallel
from repro.world import WorldConfig, build_world


@pytest.fixture(scope="module")
def parallel_store(tiny_config):
    return run_parallel(tiny_config, n_workers=2)


class TestRunParallel:
    def test_measurement_count_matches_serial(self, tiny_config,
                                              parallel_store):
        serial = OpenIntelPlatform(build_world(tiny_config)).run()
        assert parallel_store.n_measurements == serial.n_measurements

    def test_day_aggregates_cover_same_keys(self, tiny_config,
                                            parallel_store):
        serial = OpenIntelPlatform(build_world(tiny_config)).run()
        assert set(parallel_store.daily) == set(serial.daily)
        for key in serial.daily:
            assert parallel_store.daily[key].n == serial.daily[key].n

    def test_statistically_equivalent_baselines(self, tiny_config,
                                                parallel_store):
        # RNG draw order differs per shard, so values are not identical —
        # but quiet-day baselines must agree closely.
        # Compare well-sampled QUIET days only: attack-day RTTs are
        # retry-burn dominated (bimodal with huge variance), and small
        # aggregates are noisy when an NSSet mixes near/far servers.
        world = build_world(tiny_config)
        serial = OpenIntelPlatform(world).run()
        compared = 0
        for (nsset_id, day), agg in serial.daily.items():
            if world.is_dense_day(nsset_id, day):
                continue
            other = parallel_store.daily[(nsset_id, day)]
            if agg.ok_n >= 60 and other.ok_n >= 60:
                assert other.avg_rtt == pytest.approx(agg.avg_rtt, rel=0.25)
                compared += 1
        assert compared > 20

    def test_single_worker_equals_serial_shard(self, tiny_config):
        one = run_parallel(tiny_config, n_workers=1)
        serial = OpenIntelPlatform(build_world(tiny_config)).run()
        assert one.n_measurements == serial.n_measurements

    def test_deterministic_for_fixed_workers(self, tiny_config,
                                             parallel_store):
        again = run_parallel(tiny_config, n_workers=2)
        assert again.n_measurements == parallel_store.n_measurements
        sample = list(parallel_store.daily)[:50]
        for key in sample:
            assert again.daily[key].n == parallel_store.daily[key].n
            a, b = again.daily[key].avg_rtt, parallel_store.daily[key].avg_rtt
            if a is None or b is None:
                assert a == b
            else:
                assert a == pytest.approx(b)

    def test_rejects_bad_worker_count(self, tiny_config):
        with pytest.raises(ValueError):
            run_parallel(tiny_config, n_workers=0)
