"""Tests for measurement records and aggregate storage."""

import io

import pytest

from repro.dns.rcode import ResponseStatus
from repro.openintel.records import Measurement, dump_measurements, load_measurements
from repro.openintel.storage import Aggregate, MeasurementStore
from repro.util.timeutil import DAY, FIVE_MINUTES


class TestMeasurement:
    def test_ok_property(self):
        m = Measurement(0, 1, 2, ResponseStatus.OK, 10.0)
        assert m.ok
        assert not Measurement(0, 1, 2, ResponseStatus.TIMEOUT, 10.0).ok

    def test_validation(self):
        with pytest.raises(ValueError):
            Measurement(0, 1, 2, ResponseStatus.OK, -1.0)
        with pytest.raises(ValueError):
            Measurement(0, 1, 2, ResponseStatus.OK, 1.0, n_attempts=0)

    def test_serialization_roundtrip(self):
        measurements = [
            Measurement(100, 1, 2, ResponseStatus.OK, 10.5, 1),
            Measurement(200, 3, 4, ResponseStatus.TIMEOUT, 15000.0, 6),
        ]
        buf = io.StringIO()
        dump_measurements(measurements, buf)
        buf.seek(0)
        assert list(load_measurements(buf)) == measurements

    def test_load_rejects_bad_header(self):
        with pytest.raises(ValueError):
            list(load_measurements(io.StringIO("bogus\n")))


class TestAggregate:
    def test_ok_statistics(self):
        agg = Aggregate()
        agg.add(ResponseStatus.OK, 10.0)
        agg.add(ResponseStatus.OK, 30.0)
        assert agg.n == 2
        assert agg.avg_rtt == 20.0
        assert agg.rtt_min == 10.0
        assert agg.rtt_max == 30.0
        assert agg.failure_rate == 0.0

    def test_error_counting(self):
        agg = Aggregate()
        agg.add(ResponseStatus.OK, 10.0)
        agg.add(ResponseStatus.TIMEOUT, 15000.0)
        agg.add(ResponseStatus.SERVFAIL, 5.0)
        agg.add(ResponseStatus.NETWORK_ERROR, 0.0)
        assert agg.errors == 3
        assert agg.timeout_n == 1
        assert agg.servfail_n == 1
        assert agg.other_err_n == 1
        assert agg.failure_rate == 0.75
        assert agg.timeout_rate == 0.25

    def test_all_failed_has_no_avg(self):
        agg = Aggregate()
        agg.add(ResponseStatus.TIMEOUT, 15000.0)
        assert agg.avg_rtt is None

    def test_merge(self):
        a = Aggregate()
        a.add(ResponseStatus.OK, 10.0)
        b = Aggregate()
        b.add(ResponseStatus.OK, 30.0)
        b.add(ResponseStatus.TIMEOUT, 1.0)
        a.merge(b)
        assert a.n == 3
        assert a.avg_rtt == 20.0
        assert a.timeout_n == 1

    def test_copy_is_independent(self):
        a = Aggregate()
        a.add(ResponseStatus.OK, 10.0)
        dup = a.copy()
        assert dup == a
        dup.add(ResponseStatus.OK, 99.0)
        assert a.n == 1
        assert a.avg_rtt == 10.0

    def test_sum_is_order_invariant(self):
        # The worker-count-invariance property at its root: the exact
        # expansion makes the sum a function of the value multiset only.
        # These values are chosen so naive left-to-right float addition
        # gives different ulps for different orders.
        values = [1e16, 1.1, -1e16, 2.2, 3.3, 1e-3, 7.7, 1e12, -1e12]
        orders = [values, list(reversed(values)),
                  sorted(values), sorted(values, key=abs, reverse=True)]
        sums = set()
        for order in orders:
            agg = Aggregate()
            for v in order:
                if v >= 0:
                    agg.add(ResponseStatus.OK, v)
            for v in order:
                if v < 0:
                    # negative partials cannot enter via add (ingest
                    # rejects them); exercise merge instead
                    other = Aggregate()
                    other.ok_n += 1
                    other.n += 1
                    other._rtt_partials.append(v)
                    agg.merge(other)
            sums.add(agg.rtt_sum)
        assert len(sums) == 1

    def test_merge_order_invariant(self):
        import math
        parts = [0.1] * 10 + [1e15, 3.7, 1e-8]
        a, b, c = Aggregate(), Aggregate(), Aggregate()
        for i, v in enumerate(parts):
            (a, b, c)[i % 3].add(ResponseStatus.OK, v)
        left = Aggregate()
        left.merge(a); left.merge(b); left.merge(c)
        right = Aggregate()
        right.merge(c); right.merge(b); right.merge(a)
        assert left.rtt_sum == right.rtt_sum == math.fsum(parts)


class TestMeasurementStore:
    def _store(self):
        store = MeasurementStore()
        # Day 0: two quiet measurements. Day 1: one dense one.
        store.add_fast(7, 1000, ResponseStatus.OK, 10.0, False)
        store.add_fast(7, 2000, ResponseStatus.OK, 20.0, False)
        store.add_fast(7, DAY + 500, ResponseStatus.OK, 200.0, True)
        return store

    def test_daily_aggregation(self):
        store = self._store()
        agg = store.day_aggregate(7, 0)
        assert agg.n == 2
        assert agg.avg_rtt == 15.0

    def test_baseline_is_previous_day(self):
        store = self._store()
        assert store.baseline_rtt(7, DAY + 600) == 15.0

    def test_baseline_missing_day(self):
        assert self._store().baseline_rtt(7, 5 * DAY) is None

    def test_bucket_only_when_dense(self):
        store = self._store()
        assert store.bucket_aggregate(7, 1000) is None
        assert store.bucket_aggregate(7, DAY + 500) is not None

    def test_buckets_in_range(self):
        store = MeasurementStore()
        for i in range(5):
            store.add_fast(1, i * FIVE_MINUTES + 10, ResponseStatus.OK,
                           10.0, True)
        buckets = list(store.buckets_in(1, 0, 3 * FIVE_MINUTES))
        assert len(buckets) == 3
        assert [ts for ts, _ in buckets] == [0, FIVE_MINUTES, 2 * FIVE_MINUTES]

    def test_domains_measured(self):
        store = MeasurementStore()
        for i in range(7):
            store.add_fast(1, 100 + i, ResponseStatus.OK, 10.0, True)
        assert store.domains_measured(1, 0, FIVE_MINUTES) == 7

    def test_daily_series(self):
        store = self._store()
        series = store.daily_series(7, 0, 3 * DAY)
        assert [day for day, _ in series] == [0, DAY]

    def test_n_measurements(self):
        assert self._store().n_measurements == 3

    def test_merge_stores(self):
        a = self._store()
        b = self._store()
        a.merge(b)
        assert a.n_measurements == 6
        assert a.day_aggregate(7, 0).n == 4
        assert a.bucket_aggregate(7, DAY + 500).n == 2

    def test_merge_does_not_alias_donor_aggregates(self):
        # Regression: merge used to adopt the donor's Aggregate objects
        # by reference for new keys, so a later add into the combined
        # store silently mutated the donor too.
        donor = self._store()
        combined = MeasurementStore()
        combined.merge(donor)
        before = donor.day_aggregate(7, 0).state()
        combined.add_fast(7, 1500, ResponseStatus.OK, 500.0, False)
        combined.day_aggregate(7, 0).add(ResponseStatus.TIMEOUT, 1.0)
        assert donor.day_aggregate(7, 0).state() == before
        # ... and the same for dense buckets.
        bucket_before = donor.bucket_aggregate(7, DAY + 500).state()
        combined.add_fast(7, DAY + 510, ResponseStatus.OK, 9.0, True)
        assert donor.bucket_aggregate(7, DAY + 500).state() == bucket_before

    def test_merge_into_populated_store_leaves_donor_alone(self):
        a = self._store()
        b = self._store()
        before = b.day_aggregate(7, 0).state()
        a.merge(b)
        a.day_aggregate(7, 0).add(ResponseStatus.OK, 123.0)
        assert b.day_aggregate(7, 0).state() == before

    def test_store_equality(self):
        assert self._store() == self._store()
        other = self._store()
        other.add_fast(7, 3000, ResponseStatus.OK, 11.0, False)
        assert self._store() != other

    def test_rejected_rows_counted_not_aggregated(self):
        store = self._store()
        store.add_fast(7, 4000, ResponseStatus.OK, float("nan"), False)
        store.add_fast(7, 4000, ResponseStatus.OK, -5.0, False)
        assert store.n_rejected == 2
        assert store.n_measurements == 3
        assert store.day_aggregate(7, 0).is_valid

    def test_separate_nssets(self):
        store = MeasurementStore()
        store.add_fast(1, 100, ResponseStatus.OK, 10.0, False)
        store.add_fast(2, 100, ResponseStatus.OK, 99.0, False)
        assert store.day_avg_rtt(1, 0) == 10.0
        assert store.day_avg_rtt(2, 0) == 99.0
