"""Property tests for the aggregate storage invariants."""

from hypothesis import given, settings, strategies as st

from repro.dns.rcode import ResponseStatus
from repro.openintel.storage import Aggregate, MeasurementStore
from repro.util.timeutil import DAY, FIVE_MINUTES

STATUS = st.sampled_from([ResponseStatus.OK, ResponseStatus.TIMEOUT,
                          ResponseStatus.SERVFAIL,
                          ResponseStatus.NETWORK_ERROR])
RTT = st.floats(min_value=0.1, max_value=20_000, allow_nan=False)
SAMPLE = st.tuples(STATUS, RTT)


class TestAggregateProperties:
    @settings(max_examples=80)
    @given(st.lists(SAMPLE, min_size=1, max_size=80))
    def test_counts_partition(self, samples):
        agg = Aggregate()
        for status, rtt in samples:
            agg.add(status, rtt)
        assert agg.n == len(samples)
        assert agg.ok_n + agg.errors == agg.n
        assert agg.timeout_n + agg.servfail_n + agg.other_err_n == agg.errors

    @settings(max_examples=80)
    @given(st.lists(SAMPLE, min_size=1, max_size=80))
    def test_avg_within_bounds(self, samples):
        agg = Aggregate()
        for status, rtt in samples:
            agg.add(status, rtt)
        if agg.ok_n:
            assert agg.rtt_min - 1e-9 <= agg.avg_rtt <= agg.rtt_max + 1e-9
        else:
            assert agg.avg_rtt is None

    @settings(max_examples=60)
    @given(st.lists(SAMPLE, max_size=50), st.lists(SAMPLE, max_size=50))
    def test_merge_equals_combined(self, left_samples, right_samples):
        left = Aggregate()
        for status, rtt in left_samples:
            left.add(status, rtt)
        right = Aggregate()
        for status, rtt in right_samples:
            right.add(status, rtt)
        combined = Aggregate()
        for status, rtt in left_samples + right_samples:
            combined.add(status, rtt)
        left.merge(right)
        assert left.n == combined.n
        assert left.ok_n == combined.ok_n
        assert left.timeout_n == combined.timeout_n
        if combined.ok_n:
            assert abs(left.avg_rtt - combined.avg_rtt) < 1e-6


class TestStoreProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3),
                              st.integers(0, 3 * DAY - 1),
                              STATUS, RTT, st.booleans()),
                    max_size=120))
    def test_daily_totals_match_ingest(self, rows):
        store = MeasurementStore()
        for nsset_id, ts, status, rtt, dense in rows:
            store.add_fast(nsset_id, ts, status, rtt, dense)
        assert store.n_measurements == len(rows)
        daily_total = sum(agg.n for agg in store.daily.values())
        assert daily_total == len(rows)
        # Bucket totals never exceed daily totals (buckets are a subset).
        bucket_total = sum(agg.n for agg in store.buckets.values())
        dense_rows = sum(1 for *_, dense in rows if dense)
        assert bucket_total == dense_rows

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3 * DAY - 1), STATUS, RTT),
                    min_size=1, max_size=100))
    def test_buckets_in_covers_all_dense(self, rows):
        store = MeasurementStore()
        for ts, status, rtt in rows:
            store.add_fast(1, ts, status, rtt, True)
        covered = sum(agg.n for _, agg in store.buckets_in(1, 0, 3 * DAY))
        assert covered == len(rows)
