"""Tests for the daily crawl platform."""

import pytest

from repro.dns.rcode import ResponseStatus
from repro.net.ip import parse_ip
from repro.openintel.platform import OpenIntelPlatform
from repro.util.timeutil import DAY, day_start, parse_ts


@pytest.fixture(scope="module")
def platform(tiny_world):
    return OpenIntelPlatform(tiny_world)


@pytest.fixture(scope="module")
def store(platform):
    # The conftest tiny_study already runs a crawl, but that platform
    # object is private to run_study; run our own for inspection.
    return platform.run()


class TestCrawl:
    def test_every_domain_measured_daily(self, tiny_world, store):
        n_days = tiny_world.timeline.n_days
        # At least one measurement per domain per day (dense days add more).
        assert store.n_measurements >= len(tiny_world.directory) * n_days

    def test_daily_aggregates_cover_all_nssets(self, tiny_world, store):
        day0 = day_start(tiny_world.timeline.start)
        for nsset_id, domain_ids in tiny_world.directory.by_nsset.items():
            agg = store.day_aggregate(nsset_id, day0)
            assert agg is not None
            assert agg.n >= len(domain_ids)

    def test_quiet_nsset_all_ok(self, tiny_world, store):
        # Euskaltel is not attacked inside the tiny (March 2021) window.
        provider = tiny_world.providers["Euskaltel"]
        record = next(d for d in tiny_world.directory.domains
                      if d.provider_name == "Euskaltel"
                      and not d.misconfig and d.secondary_provider is None)
        agg = store.day_aggregate(record.nsset_id,
                                  day_start(tiny_world.timeline.start))
        assert agg is not None
        assert agg.errors == 0

    def test_misconfig_dead_targets_timeout(self, tiny_world, store):
        dead = [d for d in tiny_world.directory.domains
                if d.misconfig and d.delegation.nameserver_ips[0]
                == parse_ip("192.168.12.34")]
        if not dead:
            pytest.skip("no private-IP misconfig domain in tiny world")
        record = dead[0]
        agg = store.day_aggregate(record.nsset_id,
                                  day_start(tiny_world.timeline.start))
        assert agg.timeout_n == agg.n

    def test_misconfig_resolver_targets_resolve(self, tiny_world, store):
        google = [d for d in tiny_world.directory.domains
                  if d.misconfig and d.delegation.nameserver_ips[0]
                  == parse_ip("8.8.8.8")]
        if not google:
            pytest.skip("no 8.8.8.8 misconfig domain in tiny world")
        agg = store.day_aggregate(google[0].nsset_id,
                                  day_start(tiny_world.timeline.start))
        assert agg.errors == 0

    def test_transip_march_attack_recorded_densely(self, tiny_world, store):
        record = next(d for d in tiny_world.directory.domains
                      if d.provider_name == "TransIP" and not d.misconfig
                      and d.secondary_provider is None)
        start = parse_ts("2021-03-01 19:00")
        end = parse_ts("2021-03-02 01:00")
        measured = store.domains_measured(record.nsset_id, start, end)
        assert measured >= 5

    def test_transip_march_timeouts_near_paper(self, tiny_world, store):
        record = next(d for d in tiny_world.directory.domains
                      if d.provider_name == "TransIP" and not d.misconfig
                      and d.secondary_provider is None)
        start = parse_ts("2021-03-01 19:00")
        end = parse_ts("2021-03-02 01:00")
        total = failed = 0
        for _, agg in store.buckets_in(record.nsset_id, start, end):
            total += agg.n
            failed += agg.timeout_n
        # Paper Figure 3: ~20% of queries timed out.
        assert total > 20
        assert 0.08 < failed / total < 0.40

    def test_fast_path_matches_slow_path_statistically(self, tiny_world):
        # On a quiet day the fast path must be distributionally identical
        # to running the resolver: mean RTT within a fraction of a ms.
        platform = OpenIntelPlatform(tiny_world)
        record = next(d for d in tiny_world.directory.domains
                      if d.provider_name == "Euskaltel" and not d.misconfig
                      and d.secondary_provider is None)
        quiet_ts = parse_ts("2021-03-25 12:00")
        slow = [platform.measure_domain(record.domain_id, quiet_ts)
                for _ in range(400)]
        assert all(m.status is ResponseStatus.OK for m in slow)
        slow_mean = sum(m.rtt_ms for m in slow) / len(slow)
        ips = record.delegation.nameserver_ips
        base_mean = sum(tiny_world.nameservers_by_ip[ip].base_rtt_ms
                        for ip in ips) / len(ips)
        assert slow_mean == pytest.approx(base_mean + 2.0, abs=1.5)

    def test_run_subrange(self, tiny_world):
        platform = OpenIntelPlatform(tiny_world)
        start = tiny_world.timeline.start
        store = platform.run(start, start + 2 * DAY)
        per_day = len(tiny_world.directory)
        assert store.n_measurements >= 2 * per_day
        assert store.n_measurements < 4 * per_day

    def test_progress_callback(self, tiny_world):
        seen = []
        platform = OpenIntelPlatform(tiny_world)
        start = tiny_world.timeline.start
        platform.run(start, start + 2 * DAY,
                     progress=lambda i, n: seen.append((i, n)))
        assert seen == [(0, 2), (1, 2)]

    def test_progress_counts_partial_final_window(self, tiny_world):
        # Regression: floor division undercounted a non-day-aligned end,
        # so the callback reported day_idx == n_days (e.g. (3, 3) on a
        # 3.5-day range) even though iter_days crawls the partial day.
        seen = []
        platform = OpenIntelPlatform(tiny_world)
        start = tiny_world.timeline.start
        platform.run(start, start + 3 * DAY + DAY // 2,
                     progress=lambda i, n: seen.append((i, n)))
        assert seen == [(0, 4), (1, 4), (2, 4), (3, 4)]
        assert all(i < n for i, n in seen)

    def test_keep_raw(self, tiny_world):
        platform = OpenIntelPlatform(tiny_world, keep_raw=True)
        start = parse_ts("2021-03-01")  # dense day for TransIP
        platform.run(start, start + DAY)
        assert platform.raw  # raw rows retained for dense/slow paths

    def test_rejects_bad_oversampling(self, tiny_world):
        with pytest.raises(ValueError):
            OpenIntelPlatform(tiny_world, dense_oversampling=0)

    def test_deterministic(self, tiny_world, tiny_config):
        from repro.world import build_world

        w1 = build_world(tiny_config)
        w2 = build_world(tiny_config)
        s1 = OpenIntelPlatform(w1).run(w1.timeline.start,
                                       w1.timeline.start + 2 * DAY)
        s2 = OpenIntelPlatform(w2).run(w2.timeline.start,
                                       w2.timeline.start + 2 * DAY)
        assert s1.n_measurements == s2.n_measurements
        day = day_start(w1.timeline.start)
        for nsset_id in list(w1.directory.by_nsset)[:20]:
            a = s1.day_aggregate(nsset_id, day)
            b = s2.day_aggregate(nsset_id, day)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.n == b.n
                assert a.avg_rtt == pytest.approx(b.avg_rtt)
