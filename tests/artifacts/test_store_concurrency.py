"""Concurrency regression tests: writers racing readers on one cache.

``repro serve`` reads artifacts (``get(touch=False)``, shared lock)
while build passes and gc may be rewriting the manifest (exclusive
lock, atomic ``os.replace``). These tests hammer both sides from
threads and from separate processes and assert that no reader ever
sees a torn manifest or a truncated blob.
"""

import json
import multiprocessing
import os
import threading

import pytest

from repro.artifacts.store import ArtifactStore

KEYS = [f"{i:02x}" * 32 for i in range(24)]
PAYLOADS = {key: (key[:8] * 64).encode() for key in KEYS}


class TestThreadedReadersVsWriter:
    def test_reads_never_tear_while_writing(self, tmp_path):
        # Both sides run a *bounded* loop: an unbounded
        # read-until-writer-done loop can livelock, because back-to-back
        # LOCK_SH acquisitions from several reader threads can starve
        # the writer's LOCK_EX indefinitely (flock is not fair).
        store = ArtifactStore(str(tmp_path))
        errors = []

        def writer():
            try:
                for round_ in range(20):
                    for key in KEYS:
                        store.put(key, PAYLOADS[key], phase="telescope")
                    if round_ % 5 == 4:
                        store.gc(max_bytes=len(PAYLOADS[KEYS[0]]) * 8)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader():
            try:
                for _ in range(60):
                    for key in KEYS:
                        blob = store.get(key, touch=False)
                        # Evicted or not-yet-written is fine; a partial
                        # or wrong payload is the race we guard against.
                        assert blob is None or blob == PAYLOADS[key]
                    store.entries()
                    store.total_bytes
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors

    def test_touchless_get_does_not_rewrite_manifest(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(KEYS[0], b"payload", phase="join")
        before = store.entries()[0].last_used
        mtime = os.path.getmtime(os.path.join(str(tmp_path), "index.json"))
        for _ in range(5):
            assert store.get(KEYS[0], touch=False) == b"payload"
        assert store.entries()[0].last_used == before
        assert os.path.getmtime(
            os.path.join(str(tmp_path), "index.json")) == mtime

    def test_touched_get_still_updates_lru(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(KEYS[0], b"payload")
        before = store.entries()[0].last_used
        store.get(KEYS[0])
        assert store.entries()[0].last_used >= before


def _process_writer(root: str, worker: int, n_rounds: int) -> None:
    store = ArtifactStore(root)
    for round_ in range(n_rounds):
        for i, key in enumerate(KEYS):
            if i % 2 == worker % 2:
                store.put(key, PAYLOADS[key], phase=f"w{worker}")
        store.entries()


class TestProcessWriters:
    def test_parallel_process_writers_keep_manifest_consistent(
            self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        procs = [ctx.Process(target=_process_writer,
                             args=(str(tmp_path), worker, 6))
                 for worker in range(3)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        store = ArtifactStore(str(tmp_path))
        entries = {entry.key: entry for entry in store.entries()}
        assert set(entries) == set(KEYS)
        for key in KEYS:
            assert store.get(key, touch=False) == PAYLOADS[key]
            assert entries[key].size == len(PAYLOADS[key])
        # The manifest on disk is intact JSON with the expected schema.
        with open(os.path.join(str(tmp_path), "index.json")) as fp:
            doc = json.load(fp)
        assert doc["schema"] == "repro.artifacts.index/v1"
        assert set(doc["entries"]) == set(KEYS)

    def test_writer_racing_process_readers(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        writer = ctx.Process(target=_process_writer,
                             args=(str(tmp_path), 0, 10))
        writer.start()
        store = ArtifactStore(str(tmp_path))
        seen = 0
        # Bounded sweeps (see the threaded test): an is_alive()-gated
        # loop could starve the writer's exclusive lock forever.
        for _ in range(80):
            for key in KEYS:
                blob = store.get(key, touch=False)
                if blob is not None:
                    assert blob == PAYLOADS[key]
                    seen += 1
            store.entries()
        writer.join(timeout=120)
        assert writer.exitcode == 0
        # After the writer exits, its keys (the even-indexed half) must
        # all read back complete.
        for i, key in enumerate(KEYS):
            if i % 2 == 0:
                assert store.get(key, touch=False) == PAYLOADS[key]
