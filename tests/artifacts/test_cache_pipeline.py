"""Pipeline integration for the phase cache: the ISSUE's acceptance bar.

Warm-cache ``run_study`` output must be bit-identical to the cold run
that populated the cache — at 1, 2, and 4 workers — the warm run must
visibly skip the telescope and crawl phases (cached spans and
``repro.cache.hits > 0``), and chaos runs must never read or write the
cache.
"""

import warnings

import pytest

from repro import WorldConfig, build_world, run_study
from repro.artifacts.fingerprint import PHASES
from repro.artifacts.store import ArtifactStore
from repro.chaos import ChaosConfig, FaultPolicy
from repro.obs import RunTelemetry


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("artifact-cache"))


@pytest.fixture(scope="module")
def cold_study(cache_dir):
    """The cache-populating run: every phase misses, computes, stores."""
    return run_study(WorldConfig.tiny(), cache=cache_dir)


def _counter_total(telemetry, name):
    counters = telemetry.snapshot()["metrics"]["counters"]
    return sum(v for k, v in counters.items() if k.startswith(name))


def _cached_span_names(telemetry):
    names = []

    def walk(spans):
        for span in spans:
            if span.get("meta", {}).get("cached"):
                names.append(span["name"])
            walk(span.get("children", []))

    walk(telemetry.snapshot()["spans"])
    return names


class TestColdRunPopulates:
    def test_every_phase_stored(self, cold_study, cache_dir):
        store = ArtifactStore(cache_dir)
        assert len(store) == len(PHASES)
        assert sorted(e.phase for e in store.entries()) == sorted(PHASES)

    def test_cold_run_counts_misses_then_writes(self, tmp_path):
        telemetry = RunTelemetry.create()
        run_study(WorldConfig.tiny(), cache=str(tmp_path / "fresh"),
                  telemetry=telemetry)
        assert _counter_total(telemetry, "repro.cache.misses") == len(PHASES)
        assert _counter_total(telemetry, "repro.cache.hits") == 0
        assert _counter_total(telemetry, "repro.cache.bytes_written") > 0


class TestWarmColdEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_warm_output_bit_identical(self, cold_study, cache_dir,
                                       n_workers):
        warm = run_study(WorldConfig.tiny(), cache=cache_dir,
                         n_workers=n_workers)
        assert warm.report() == cold_study.report()
        assert warm.store == cold_study.store
        assert warm.feed.attacks == cold_study.feed.attacks
        assert warm.join.classified == cold_study.join.classified
        assert warm.events == cold_study.events

    def test_warm_run_hits_every_phase(self, cold_study, cache_dir):
        telemetry = RunTelemetry.create()
        run_study(WorldConfig.tiny(), cache=cache_dir, telemetry=telemetry)
        assert _counter_total(telemetry, "repro.cache.hits") == len(PHASES)
        assert _counter_total(telemetry, "repro.cache.misses") == 0
        assert _counter_total(telemetry, "repro.cache.bytes_read") > 0

    def test_warm_run_marks_spans_cached(self, cold_study, cache_dir):
        telemetry = RunTelemetry.create()
        run_study(WorldConfig.tiny(), cache=cache_dir, telemetry=telemetry)
        cached = _cached_span_names(telemetry)
        # The acceptance bar: telescope + crawl visibly skipped.
        assert "telescope" in cached and "crawl" in cached
        assert set(cached) == set(PHASES)

    def test_different_seed_misses(self, cold_study, cache_dir):
        telemetry = RunTelemetry.create()
        run_study(WorldConfig.tiny(seed=7), cache=cache_dir,
                  telemetry=telemetry)
        assert _counter_total(telemetry, "repro.cache.hits") == 0
        assert _counter_total(telemetry, "repro.cache.misses") == len(PHASES)


class TestCacheBypass:
    def test_chaos_never_reads_or_writes_cache(self, cold_study, cache_dir):
        store = ArtifactStore(cache_dir)
        before = {(e.key, e.size, e.last_used) for e in store.entries()}
        telemetry = RunTelemetry.create()
        chaos = ChaosConfig(seed=5, transport=FaultPolicy(drop_p=0.05))
        with pytest.warns(RuntimeWarning, match="chaos runs bypass"):
            run_study(WorldConfig.tiny(), cache=cache_dir, chaos=chaos,
                      telemetry=telemetry)
        after = {(e.key, e.size, e.last_used) for e in store.entries()}
        assert after == before  # nothing read (no last_used stamp), nothing written
        assert _counter_total(telemetry, "repro.cache.hits") == 0
        assert _counter_total(telemetry, "repro.cache.misses") == 0
        assert _counter_total(telemetry, "repro.cache.bytes_written") == 0

    def test_prebuilt_world_bypasses_with_warning(self, cache_dir):
        world = build_world(WorldConfig.tiny(seed=11))
        store = ArtifactStore(cache_dir)
        n_before = len(store)
        with pytest.warns(RuntimeWarning, match="pre-built world"):
            run_study(world=world, cache=cache_dir)
        assert len(store) == n_before

    def test_clean_cache_run_emits_no_warning(self, cold_study, cache_dir):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_study(WorldConfig.tiny(), cache=cache_dir)


class TestCacheArgumentForms:
    def test_accepts_artifact_store(self, cold_study, cache_dir):
        telemetry = RunTelemetry.create()
        run_study(WorldConfig.tiny(), cache=ArtifactStore(cache_dir),
                  telemetry=telemetry)
        assert _counter_total(telemetry, "repro.cache.hits") == len(PHASES)
