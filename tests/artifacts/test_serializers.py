"""Exact round-trip tests for the phase-artifact serializers.

Every artifact must satisfy two contracts: ``loads(dumps(x))`` is
semantically equal to ``x`` (bit-for-bit on every float), and
``dumps(loads(dumps(x))) == dumps(x)`` (deterministic bytes).
"""

import pytest

from repro.artifacts.serializers import (PHASE_SERIALIZERS, dumps_events,
                                         dumps_feed, dumps_join, dumps_store,
                                         loads_events, loads_feed, loads_join,
                                         loads_store)
from repro.core.join import DatasetJoin


class TestFeedRoundTrip:
    def test_exact(self, tiny_study):
        loaded = loads_feed(dumps_feed(tiny_study.feed))
        assert loaded.records == tiny_study.feed.records
        assert loaded.attacks == tiny_study.feed.attacks

    def test_deterministic_bytes(self, tiny_study):
        data = dumps_feed(tiny_study.feed)
        assert dumps_feed(loads_feed(data)) == data


class TestStoreRoundTrip:
    def test_exact(self, tiny_study):
        loaded = loads_store(dumps_store(tiny_study.store))
        assert loaded == tiny_study.store

    def test_ingest_totals_survive(self, tiny_study):
        loaded = loads_store(dumps_store(tiny_study.store))
        assert loaded.n_measurements == tiny_study.store.n_measurements
        assert loaded.n_rejected == tiny_study.store.n_rejected
        assert loaded.n_merges == tiny_study.store.n_merges

    def test_deterministic_bytes(self, tiny_study):
        data = dumps_store(tiny_study.store)
        assert dumps_store(loads_store(data)) == data


class TestJoinRoundTrip:
    def test_exact(self, tiny_study):
        loaded = loads_join(dumps_join(tiny_study.join))
        assert loaded.classified == tiny_study.join.classified
        assert loaded.rejected == []

    def test_deterministic_bytes(self, tiny_study):
        data = dumps_join(tiny_study.join)
        assert dumps_join(loads_join(data)) == data

    def test_degraded_join_refused(self, tiny_study):
        degraded = DatasetJoin()
        degraded.classified.extend(tiny_study.join.classified)
        degraded.rejected.append(object())
        with pytest.raises(ValueError, match="rejected"):
            dumps_join(degraded)


class TestEventsRoundTrip:
    def test_exact(self, tiny_study):
        loaded = loads_events(dumps_events(tiny_study.events))
        assert loaded == tiny_study.events

    def test_deterministic_bytes(self, tiny_study):
        data = dumps_events(tiny_study.events)
        assert dumps_events(loads_events(data)) == data


class TestSchemaGuards:
    def test_wrong_schema_rejected(self, tiny_study):
        data = dumps_feed(tiny_study.feed)
        with pytest.raises(ValueError, match="schema mismatch"):
            loads_store(data)

    def test_registry_covers_every_phase(self):
        assert set(PHASE_SERIALIZERS) == \
            {"telescope", "crawl", "join", "events"}
        for dumps, loads in PHASE_SERIALIZERS.values():
            assert callable(dumps) and callable(loads)
