"""Tests for the on-disk artifact store: blobs, manifest, LRU gc."""

import json
import os

import pytest

import repro.artifacts.store as store_module
from repro.artifacts.store import ArtifactStore


@pytest.fixture()
def fake_time(monkeypatch):
    """A deterministic, strictly-increasing clock for LRU assertions."""
    state = {"now": 1000.0}

    def tick():
        state["now"] += 1.0
        return state["now"]

    monkeypatch.setattr(store_module.time, "time", tick)
    return state


class TestPutGet:
    def test_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("ab" * 32, b"payload", phase="telescope")
        assert store.get("ab" * 32) == b"payload"

    def test_miss_returns_none(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert store.get("cd" * 32) is None
        assert not store.has("cd" * 32)

    def test_has_after_put(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("ab" * 32, b"x")
        assert store.has("ab" * 32)

    def test_blobs_sharded_by_key_prefix(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        key = "ef" * 32
        store.put(key, b"x")
        assert (tmp_path / "objects" / "ef" / key).is_file()

    def test_overwrite_updates_size_keeps_created(self, tmp_path, fake_time):
        store = ArtifactStore(str(tmp_path))
        key = "ab" * 32
        store.put(key, b"small")
        created = store.entries()[0].created
        store.put(key, b"a much larger payload")
        (entry,) = store.entries()
        assert entry.size == len(b"a much larger payload")
        assert entry.created == created
        assert entry.last_used > created

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("ab" * 32, b"x", phase="join")
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []


class TestManifest:
    def test_persists_across_instances(self, tmp_path):
        ArtifactStore(str(tmp_path)).put("ab" * 32, b"x", phase="crawl")
        reopened = ArtifactStore(str(tmp_path))
        assert reopened.get("ab" * 32) == b"x"
        assert reopened.entries()[0].phase == "crawl"

    def test_damaged_index_treated_as_empty(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("ab" * 32, b"x")
        (tmp_path / "index.json").write_text("{ not json")
        assert len(store) == 0
        assert store.get("ab" * 32) is None

    def test_wrong_schema_treated_as_empty(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        (tmp_path / "index.json").write_text(
            json.dumps({"schema": "something/else", "entries": {"k": {}}}))
        assert len(store) == 0

    def test_vanished_blob_is_a_miss_and_dropped(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        key = "ab" * 32
        store.put(key, b"x")
        os.unlink(store._blob_path(key))
        assert store.get(key) is None
        assert len(store) == 0

    def test_get_stamps_last_used(self, tmp_path, fake_time):
        store = ArtifactStore(str(tmp_path))
        store.put("aa" * 32, b"x")
        store.put("bb" * 32, b"y")
        store.get("aa" * 32)  # most recently used now
        assert [e.key[:2] for e in store.entries()] == ["aa", "bb"]


class TestAccounting:
    def test_len_and_total_bytes(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("aa" * 32, b"four")
        store.put("bb" * 32, b"sixsix")
        assert len(store) == 2
        assert store.total_bytes == 10


class TestGc:
    def test_no_cap_is_noop(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("aa" * 32, b"x" * 100)
        assert store.gc() == []
        assert len(store) == 1

    def test_evicts_least_recently_used_first(self, tmp_path, fake_time):
        store = ArtifactStore(str(tmp_path))
        store.put("aa" * 32, b"x" * 40)
        store.put("bb" * 32, b"y" * 40)
        store.put("cc" * 32, b"z" * 40)
        store.get("aa" * 32)  # refresh aa: bb is now the LRU entry
        evicted = store.gc(max_bytes=100)
        assert [e.key[:2] for e in evicted] == ["bb"]
        assert store.total_bytes == 80
        assert store.get("bb" * 32) is None
        assert not os.path.exists(store._blob_path("bb" * 32))
        assert store.get("aa" * 32) == b"x" * 40

    def test_constructor_cap_used_by_default(self, tmp_path, fake_time):
        store = ArtifactStore(str(tmp_path), max_bytes=50)
        store.put("aa" * 32, b"x" * 40)
        store.put("bb" * 32, b"y" * 40)
        evicted = store.gc()
        assert len(evicted) == 1
        assert store.total_bytes <= 50

    def test_zero_cap_evicts_everything(self, tmp_path, fake_time):
        store = ArtifactStore(str(tmp_path))
        store.put("aa" * 32, b"x")
        store.put("bb" * 32, b"y")
        assert len(store.gc(max_bytes=0)) == 2
        assert len(store) == 0


class TestClear:
    def test_clear_removes_entries_and_blobs(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("aa" * 32, b"x")
        store.put("bb" * 32, b"y")
        assert store.clear() == 2
        assert len(store) == 0
        assert not os.path.exists(store._blob_path("aa" * 32))

    def test_clear_empty_store(self, tmp_path):
        assert ArtifactStore(str(tmp_path)).clear() == 0
