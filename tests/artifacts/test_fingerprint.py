"""Tests for deterministic phase fingerprints and key chaining."""

import json

import pytest

from repro.artifacts import fingerprint
from repro.artifacts.fingerprint import (PHASES, canonical_config,
                                         config_fingerprint, phase_key,
                                         study_keys)
from repro.world.config import WorldConfig
from repro.dns.resolver import ResolverConfig


class TestCanonicalConfig:
    def test_is_valid_json_with_class_names(self):
        doc = json.loads(canonical_config(WorldConfig.tiny()))
        assert doc["config"]["__class__"] == "WorldConfig"
        assert doc["config"]["resolver"]["__class__"] == "ResolverConfig"
        assert doc["config"]["schedule"]["__class__"] == "AttackScheduleConfig"
        assert doc["install_scenarios"] is True

    def test_identical_configs_canonicalize_identically(self):
        assert canonical_config(WorldConfig.tiny()) == \
            canonical_config(WorldConfig.tiny())

    def test_rejects_unserializable_values(self):
        with pytest.raises(TypeError):
            fingerprint._canonical(object())


class TestConfigFingerprint:
    def test_deterministic(self):
        assert config_fingerprint(WorldConfig.tiny()) == \
            config_fingerprint(WorldConfig.tiny())

    def test_seed_changes_fingerprint(self):
        assert config_fingerprint(WorldConfig.tiny(seed=1)) != \
            config_fingerprint(WorldConfig.tiny(seed=2))

    def test_nested_resolver_knob_changes_fingerprint(self):
        import dataclasses

        base = WorldConfig.tiny()
        tweaked = dataclasses.replace(
            base, resolver=ResolverConfig(max_attempts=3))
        assert config_fingerprint(base) != config_fingerprint(tweaked)

    def test_install_scenarios_changes_fingerprint(self):
        cfg = WorldConfig.tiny()
        assert config_fingerprint(cfg, install_scenarios=True) != \
            config_fingerprint(cfg, install_scenarios=False)


class TestStudyKeys:
    def test_covers_every_phase_with_distinct_keys(self):
        keys = study_keys(WorldConfig.tiny())
        assert set(keys) == set(PHASES)
        assert len(set(keys.values())) == len(PHASES)

    def test_deterministic_across_calls(self):
        assert study_keys(WorldConfig.tiny()) == study_keys(WorldConfig.tiny())

    def test_config_change_invalidates_every_phase(self):
        a = study_keys(WorldConfig.tiny(seed=1))
        b = study_keys(WorldConfig.tiny(seed=2))
        for phase in PHASES:
            assert a[phase] != b[phase]

    def test_upstream_key_chains_into_downstream(self):
        base = config_fingerprint(WorldConfig.tiny())
        join_a = phase_key("join", base, upstream=("tele-a",))
        join_b = phase_key("join", base, upstream=("tele-b",))
        assert join_a != join_b

    def test_schema_version_bump_invalidates_phase_and_downstream(
            self, monkeypatch):
        cfg = WorldConfig.tiny()
        before = study_keys(cfg)
        monkeypatch.setitem(fingerprint.SCHEMA_VERSIONS, "telescope", 99)
        after = study_keys(cfg)
        assert after["telescope"] != before["telescope"]
        # join chains telescope; events chains join.
        assert after["join"] != before["join"]
        assert after["events"] != before["events"]
        # crawl does not consume the telescope: unaffected.
        assert after["crawl"] == before["crawl"]

    def test_keys_are_sha256_hex(self):
        for key in study_keys(WorldConfig.tiny()).values():
            assert len(key) == 64
            int(key, 16)  # parses as hex
