"""Tests for deterministic phase fingerprints and key chaining."""

import json

import pytest

from repro.artifacts import fingerprint
from repro.artifacts.fingerprint import (PHASES, canonical_config,
                                         config_fingerprint, phase_key,
                                         study_keys)
from repro.world.config import WorldConfig
from repro.dns.resolver import ResolverConfig


class TestCanonicalConfig:
    def test_is_valid_json_with_class_names(self):
        doc = json.loads(canonical_config(WorldConfig.tiny()))
        assert doc["config"]["__class__"] == "WorldConfig"
        assert doc["config"]["resolver"]["__class__"] == "ResolverConfig"
        assert doc["config"]["schedule"]["__class__"] == "AttackScheduleConfig"
        assert doc["install_scenarios"] is True

    def test_identical_configs_canonicalize_identically(self):
        assert canonical_config(WorldConfig.tiny()) == \
            canonical_config(WorldConfig.tiny())

    def test_rejects_unserializable_values(self):
        with pytest.raises(TypeError):
            fingerprint._canonical(object())


class TestConfigFingerprint:
    def test_deterministic(self):
        assert config_fingerprint(WorldConfig.tiny()) == \
            config_fingerprint(WorldConfig.tiny())

    def test_seed_changes_fingerprint(self):
        assert config_fingerprint(WorldConfig.tiny(seed=1)) != \
            config_fingerprint(WorldConfig.tiny(seed=2))

    def test_nested_resolver_knob_changes_fingerprint(self):
        import dataclasses

        base = WorldConfig.tiny()
        tweaked = dataclasses.replace(
            base, resolver=ResolverConfig(max_attempts=3))
        assert config_fingerprint(base) != config_fingerprint(tweaked)

    def test_install_scenarios_changes_fingerprint(self):
        cfg = WorldConfig.tiny()
        assert config_fingerprint(cfg, install_scenarios=True) != \
            config_fingerprint(cfg, install_scenarios=False)


class TestStudyKeys:
    def test_covers_every_phase_with_distinct_keys(self):
        keys = study_keys(WorldConfig.tiny())
        assert set(keys) == set(PHASES)
        assert len(set(keys.values())) == len(PHASES)

    def test_deterministic_across_calls(self):
        assert study_keys(WorldConfig.tiny()) == study_keys(WorldConfig.tiny())

    def test_config_change_invalidates_every_phase(self):
        a = study_keys(WorldConfig.tiny(seed=1))
        b = study_keys(WorldConfig.tiny(seed=2))
        for phase in PHASES:
            assert a[phase] != b[phase]

    def test_upstream_key_chains_into_downstream(self):
        base = config_fingerprint(WorldConfig.tiny())
        join_a = phase_key("join", base, upstream=("tele-a",))
        join_b = phase_key("join", base, upstream=("tele-b",))
        assert join_a != join_b

    def test_schema_version_bump_invalidates_phase_and_downstream(
            self, monkeypatch):
        cfg = WorldConfig.tiny()
        before = study_keys(cfg)
        monkeypatch.setitem(fingerprint.SCHEMA_VERSIONS, "telescope", 99)
        after = study_keys(cfg)
        assert after["telescope"] != before["telescope"]
        # join chains telescope; events chains join.
        assert after["join"] != before["join"]
        assert after["events"] != before["events"]
        # crawl does not consume the telescope: unaffected.
        assert after["crawl"] == before["crawl"]

    def test_keys_are_sha256_hex(self):
        for key in study_keys(WorldConfig.tiny()).values():
            assert len(key) == 64
            int(key, 16)  # parses as hex


class TestScenarioPackFingerprint:
    """Pack identity + params are part of every fingerprint."""

    def test_pack_name_changes_config_fingerprint(self):
        import dataclasses

        base = WorldConfig.tiny()
        amplified = dataclasses.replace(base, scenario_pack="amplification")
        assert config_fingerprint(base) != config_fingerprint(amplified)

    def test_pack_params_change_config_fingerprint(self):
        import dataclasses

        from repro.attacks.amplification import AmplificationParams

        a = dataclasses.replace(WorldConfig.tiny(),
                                scenario_pack="amplification")
        b = dataclasses.replace(a,
                                pack_params=AmplificationParams(n_attacks=9))
        assert config_fingerprint(a) != config_fingerprint(b)

    def test_pack_selection_invalidates_every_phase_key(self):
        import dataclasses

        base = study_keys(WorldConfig.tiny())
        packed = study_keys(dataclasses.replace(
            WorldConfig.tiny(), scenario_pack="defense"))
        for phase in PHASES:
            assert base[phase] != packed[phase]

    def test_canonical_config_carries_the_pack(self):
        doc = json.loads(canonical_config(WorldConfig.tiny()))
        assert doc["config"]["scenario_pack"] == "volumetric"
        assert doc["config"]["pack_params"] is None


class TestAttackDigestRegression:
    """The satellite contract: attack digests track every scenario and
    vector field — amplification fields included — while untouched days
    keep byte-identical keys after a pack edit."""

    @staticmethod
    def _amplified(start: int, victim: int = 0x0A000001, **overrides):
        from repro.attacks.model import (AmplificationProfile, Attack,
                                         AttackVector, Spoofing)
        from repro.net.ports import PORT_DNS, PROTO_UDP
        from repro.util.timeutil import Window

        fields = dict(n_amplifiers=5_000, mean_baf=30.0,
                      query_pps=20_000.0, list_darknet_share=0.004,
                      qtype="ANY")
        fields.update(overrides)
        return Attack(
            victim_ip=victim, window=Window(start, start + 1_800),
            vectors=[AttackVector(PROTO_UDP, (PORT_DNS,), 40_000.0,
                                  Spoofing.AMPLIFIED, 1024)],
            amplification=AmplificationProfile(**fields))

    def test_canonical_attack_includes_amplification_fields(self):
        row = fingerprint.canonical_attack(self._amplified(0))
        assert row[-1] == [5_000, 30.0, 20_000.0, 0.004, "ANY"]
        from repro.attacks.model import Attack, AttackVector
        from repro.net.ports import PORT_DNS
        from repro.util.timeutil import Window

        plain = Attack(victim_ip=1, window=Window(0, 600),
                       vectors=[AttackVector.udp_flood(PORT_DNS, 100.0)])
        assert fingerprint.canonical_attack(plain)[-1] is None

    @pytest.mark.parametrize("overrides", [
        {"n_amplifiers": 6_000},
        {"mean_baf": 31.0},
        {"query_pps": 21_000.0},
        {"list_darknet_share": 0.005},
        {"qtype": "TXT"},
    ])
    def test_every_amplification_field_changes_the_digest(self, overrides):
        base = fingerprint._attack_digest([self._amplified(0)])
        edited = fingerprint._attack_digest(
            [self._amplified(0, **overrides)])
        assert base != edited

    def test_day_keys_change_only_on_the_touched_day(self):
        from repro.artifacts.fingerprint import day_keys
        from repro.util.timeutil import DAY, parse_ts

        config = WorldConfig.tiny()
        day0 = parse_ts(config.start)
        edit_day = day0 + 10 * DAY
        schedule = [self._amplified(day0 + 2 * DAY + 3600),
                    self._amplified(edit_day + 3600, victim=0x0A000002)]
        before = day_keys(config, schedule)
        edited = list(schedule)
        edited[1] = self._amplified(edit_day + 3600, victim=0x0A000002,
                                    mean_baf=55.0)
        after = day_keys(config, edited)
        changed = {day for day in before if before[day] != after[day]}
        assert changed  # the pack edit reached the keys
        for day in changed:
            # Only the edited day's neighbourhood moved (crawl bleeds
            # one settling day past the impact window).
            assert edit_day - DAY <= day <= edit_day + 2 * DAY
        untouched = set(before) - changed
        assert untouched
        for day in untouched:
            assert before[day] == after[day]  # byte-identical blobs
