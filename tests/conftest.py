"""Shared fixtures: session-scoped worlds and studies.

Building a world / running a study is the expensive part of many tests;
session scope keeps the suite fast while letting dozens of tests assert
against the same deterministic run.
"""

from __future__ import annotations

import pytest

from repro import WorldConfig, build_world, run_study


@pytest.fixture(scope="session")
def tiny_config() -> WorldConfig:
    return WorldConfig.tiny()


@pytest.fixture(scope="session")
def tiny_world(tiny_config):
    return build_world(tiny_config)


@pytest.fixture(scope="session")
def tiny_study(tiny_world):
    return run_study(world=tiny_world)


@pytest.fixture(scope="session")
def small_config() -> WorldConfig:
    return WorldConfig.small()


@pytest.fixture(scope="session")
def small_study(small_config):
    return run_study(small_config)


@pytest.fixture()
def rng():
    import random

    return random.Random(1234)
