"""End-to-end reproduction of the Russian case studies (§5.2).

A dedicated world covering February-March 2022: the mil.ru 8-day attack
with its geofence blackout, and the RZD railways attack with overnight
recovery — observed through OpenINTEL, and through the reactive
platform which probes every nameserver.
"""

import pytest

from repro import ReactivePlatform, WorldConfig, run_study
from repro.util.timeutil import DAY, HOUR, Window, day_start, parse_ts


@pytest.fixture(scope="module")
def study():
    config = WorldConfig(
        seed=11,
        start="2022-02-01",
        end_exclusive="2022-04-01",
        n_domains=2000,
        n_selfhosted_providers=20,
        n_filler_providers=10,
        attacks_per_month=200,
    )
    return run_study(config)


MILRU_ATTACK = Window(parse_ts("2022-03-11 10:00"), parse_ts("2022-03-18 20:00"))
RZD_ATTACK = Window(parse_ts("2022-03-08 15:30"), parse_ts("2022-03-08 20:45"))


class TestMilRu:
    def test_telescope_sees_eight_day_attack(self, study):
        mod_ips = set(study.world.providers["Russian MoD"].ns_ips)
        inferred = [a for a in study.feed.attacks if a.victim_ip in mod_ips]
        assert len(inferred) == 3  # all three nameservers
        for attack in inferred:
            assert attack.duration_s > 7 * DAY

    def test_telescope_intensity_modest(self, study):
        # §5.2.1: the telescope detected only a modest-intensity attack
        # (the severe reflected component is invisible).
        mod_ips = set(study.world.providers["Russian MoD"].ns_ips)
        inferred = [a for a in study.feed.attacks if a.victim_ip in mod_ips]
        ground_truth = [a for a in study.world.attacks
                        if a.victim_ip in mod_ips and a.total_pps > 100_000]
        assert ground_truth  # the severe component exists...
        for attack in inferred:
            # ...but the inferred rate reflects only the visible vector.
            assert attack.inferred_victim_pps() < 100_000

    def test_openintel_fails_march_12_to_16(self, study):
        record = study.world.directory.get_by_name("mil.ru")
        for day_text in ("2022-03-12", "2022-03-13", "2022-03-14",
                         "2022-03-15", "2022-03-16"):
            day = parse_ts(day_text)
            agg = study.store.day_aggregate(record.nsset_id, day)
            assert agg is not None
            assert agg.ok_n == 0, f"mil.ru resolved on {day_text}"

    def test_openintel_resolves_before_attack(self, study):
        record = study.world.directory.get_by_name("mil.ru")
        agg = study.store.day_aggregate(record.nsset_id,
                                        parse_ts("2022-03-05"))
        assert agg is not None and agg.ok_n > 0

    def test_openintel_resolves_after_attack(self, study):
        record = study.world.directory.get_by_name("mil.ru")
        agg = study.store.day_aggregate(record.nsset_id,
                                        parse_ts("2022-03-25"))
        assert agg is not None and agg.ok_n > 0

    def test_cyrillic_twin_fails_too(self, study):
        record = study.world.directory.get_by_name("минобороны.рф")
        agg = study.store.day_aggregate(record.nsset_id,
                                        parse_ts("2022-03-14"))
        assert agg is not None and agg.ok_n == 0

    def test_reactive_sees_unresolvable_blackout(self, study):
        platform = ReactivePlatform(study.world)
        store = platform.run(study.feed, window=MILRU_ATTACK)
        record = study.world.directory.get_by_name("mil.ru")
        blackout = Window(parse_ts("2022-03-12 00:00"),
                          parse_ts("2022-03-17 06:00"))
        share = store.unresponsive_share(record.domain_id, blackout)
        # §5.2.1: none of the three nameservers responsive.
        assert share > 0.95

    def test_nameserver_structure(self, study):
        # Three nameservers, one /24, one ASN — the paper's "textbook
        # illustration of poor resilience".
        record = study.world.directory.get_by_name("mil.ru")
        info = study.metadata.info(record.nsset_id, MILRU_ATTACK.start)
        assert len(info.ips) == 3
        assert info.single_prefix
        assert info.single_asn
        assert info.is_unicast


class TestRzd:
    def test_telescope_timing(self, study):
        rzd_ips = set(study.world.providers["RZD"].ns_ips)
        inferred = [a for a in study.feed.attacks if a.victim_ip in rzd_ips]
        assert inferred
        for attack in inferred:
            # 5-minute window quantization around the paper's 15:30-20:45.
            assert abs(attack.start - RZD_ATTACK.start) <= 600
            assert abs(attack.end - RZD_ATTACK.end) <= 600

    def test_unresolvable_during_attack(self, study):
        platform = ReactivePlatform(study.world)
        store = platform.run(study.feed, window=RZD_ATTACK)
        record = study.world.directory.get_by_name("rzd.ru")
        share = store.unresponsive_share(record.domain_id, RZD_ATTACK)
        # Nine probes land in each 5-minute bucket (three campaigns x
        # three nameservers), so even a ~99.5% per-probe drop rate leaks
        # an answer into a few buckets; "unresolvable" here means the
        # overwhelming majority of buckets saw no answer at all.
        assert share > 0.85

    def test_recovery_at_six_am(self, study):
        # §5.2.2: the domain became intermittently responsive at 06:00
        # the next morning.
        platform = ReactivePlatform(study.world)
        store = platform.run(study.feed, window=RZD_ATTACK)
        record = study.world.directory.get_by_name("rzd.ru")
        first = store.first_responsive_after(
            record.domain_id, parse_ts("2022-03-08 21:00"))
        assert first is not None
        recovery = parse_ts("2022-03-09 06:00")
        assert recovery - 2 * HOUR <= first <= recovery + HOUR

    def test_two_prefixes_one_asn(self, study):
        record = study.world.directory.get_by_name("rzd.ru")
        info = study.metadata.info(record.nsset_id, RZD_ATTACK.start)
        assert info.n_slash24 == 2   # slightly more resilient than mil.ru
        assert info.single_asn


class TestBeeline:
    def test_march_attacks_on_beeline(self, study):
        beeline_ips = set(study.world.providers["Beeline RU"].ns_ips)
        inferred = [a for a in study.feed.attacks
                    if a.victim_ip in beeline_ips]
        # The scripted March-2022 series (§6.1's Russian banking DNS).
        assert len(inferred) >= 3


class TestNicRu:
    def test_complete_failure_event(self, study):
        # §6.3.1: the most effective large-infrastructure attack caused
        # 100% resolution failure at nic.ru.
        nicru_events = [e for e in study.events if e.company == "nic.ru"]
        assert nicru_events
        worst = max(nicru_events, key=lambda e: e.failure_rate)
        assert worst.failure_rate > 0.95
