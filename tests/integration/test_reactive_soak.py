"""Chaos-soak of the reactive platform at production trigger rates.

The acceptance contract for the overload-aware pipeline (§4.3.1 at
scale): thousands of RSDoS triggers flow through the bounded feed into
the campaign scheduler while a ``FaultInjector`` repeatedly kills and
restarts the worker.  The recovered run must be *bit-identical* to an
unfaulted one — same probe-store digest, same summary — and every
paper SLO (10-minute trigger, 50-probe window budget, attack + tail
coverage) either holds or the campaign carries an explicit degradation
flag.  Nothing is ever dropped silently.
"""

import os

import pytest

from repro.chaos.injector import FaultInjector
from repro.chaos.policy import ChaosConfig
from repro.reactive import (
    CampaignState,
    ReactiveService,
    fast_transport,
    synthetic_triggers,
)
from repro.util.timeutil import FIVE_MINUTES, HOUR, MINUTE

# CI scales the soak down via the environment; the default is the
# full production-rate run.
N_TRIGGERS = int(os.environ.get("REPRO_SOAK_TRIGGERS", "1000"))
PROBES_PER_WINDOW = 3
PROBE_BUDGET = 60
CHAOS_SEEDS = [11, 12, 13]


def soak_service(world, **overrides):
    kwargs = dict(probes_per_window=PROBES_PER_WINDOW,
                  post_attack_s=HOUR,
                  probe_budget=PROBE_BUDGET,
                  shed_after_s=30 * MINUTE,
                  transport=fast_transport(seed=2),
                  checkpoint_every=4)
    kwargs.update(overrides)
    return ReactiveService(world, **kwargs)


@pytest.fixture(scope="module")
def triggers(tiny_world):
    return synthetic_triggers(tiny_world, N_TRIGGERS, seed=5,
                              invalid_share=0.02)


@pytest.fixture(scope="module")
def clean_report(tiny_world, triggers):
    return soak_service(tiny_world).run(triggers)


@pytest.fixture(scope="module", params=CHAOS_SEEDS,
                ids=[f"seed-{s}" for s in CHAOS_SEEDS])
def chaos_report(request, tiny_world, triggers):
    injector = FaultInjector(
        ChaosConfig.reactive_preset("moderate", seed=request.param))
    return soak_service(tiny_world).run(triggers, injector=injector)


class TestCleanSoak:
    def test_every_trigger_is_accounted(self, clean_report):
        c = clean_report.counts
        assert c["triggers"] == N_TRIGGERS
        assert c["unaccounted"] == 0
        assert (c["feed_shed"] + c["invalid"] + c["ignored"]
                + c["done"] + c["shed"]) == N_TRIGGERS

    def test_overload_degrades_loudly(self, clean_report):
        """At this rate the probe budget saturates: campaigns are
        throttled, delayed, or shed — and every one says so."""
        c = clean_report.counts
        assert c["done"] > 0
        assert c["shed"] + c["throttled"] + c["late"] > 0
        for campaign in clean_report.campaigns:
            if campaign.state == CampaignState.SHED:
                assert "shed" in campaign.reasons

    def test_trigger_slo_holds_or_is_flagged(self, clean_report):
        for campaign in clean_report.campaigns:
            if campaign.state != CampaignState.DONE:
                continue
            if campaign.trigger_latency_s > 10 * MINUTE:
                assert "late" in campaign.reasons

    def test_probe_budget_slo(self, clean_report):
        """Ethics bound: never more than the per-window allocation,
        and reduced allocations are flagged ``throttled``."""
        for campaign in clean_report.campaigns:
            if campaign.state == CampaignState.WAITING:
                continue
            assert campaign.allocation <= PROBES_PER_WINDOW
            if 0 < campaign.allocation < min(PROBES_PER_WINDOW,
                                             len(campaign.domain_ids)):
                assert "throttled" in campaign.reasons

    def test_coverage_slo(self, clean_report):
        """Done campaigns cover the attack plus the post-attack tail
        (the layout may finish a started 5-minute window)."""
        for campaign in clean_report.campaigns:
            if campaign.state != CampaignState.DONE:
                continue
            assert campaign.ends_at == campaign.attack.end + HOUR
            assert campaign.n_probes > 0

    def test_store_matches_probe_counter(self, clean_report):
        assert len(clean_report.store) == clean_report.counts["probes"] > 0


class TestChaosSoak:
    def test_worker_really_died(self, chaos_report):
        assert chaos_report.counts["kills"] > 0
        assert chaos_report.counts["restores"] == chaos_report.counts["kills"]

    def test_probe_store_bit_identical(self, clean_report, chaos_report):
        assert chaos_report.store_digest() == clean_report.store_digest()

    def test_summary_bit_identical(self, clean_report, chaos_report):
        assert chaos_report.summary() == clean_report.summary()

    def test_no_silent_drops_under_chaos(self, chaos_report):
        assert chaos_report.counts["unaccounted"] == 0


class TestBoundedFeedSoak:
    def test_block_backpressure_at_scale(self, tiny_world, triggers):
        """A tightly bounded feed with the ``block`` policy loses no
        trigger, stays deterministic, and survives chaos unchanged."""
        bounded = soak_service(tiny_world, feed_capacity=16,
                               backpressure="block")
        clean = bounded.run(triggers)
        assert clean.counts["feed_shed"] == 0
        assert clean.counts["unaccounted"] == 0

        injector = FaultInjector(
            ChaosConfig.reactive_preset("moderate", seed=CHAOS_SEEDS[0]))
        chaotic = soak_service(tiny_world, feed_capacity=16,
                               backpressure="block").run(
            triggers, injector=injector)
        assert chaotic.counts["kills"] > 0
        assert chaotic.summary() == clean.summary()

    def test_shed_oldest_counts_every_loss(self, tiny_world, triggers):
        report = soak_service(tiny_world, feed_capacity=16,
                              backpressure="shed_oldest").run(triggers)
        assert report.counts["feed_shed"] > 0
        assert report.counts["unaccounted"] == 0
