"""Engine-path equivalence: the refactor's acceptance bar.

``run_study`` now executes the declared :data:`repro.core.pipeline
.STUDY_GRAPH` through the engine executor. Its output must be
bit-identical to the pre-refactor goldens (captured from the
hand-wired pipeline at the same configs, committed under
``tests/integration/golden/``) for: a clean run, a warm-cache run,
1/2/4 workers, and seeded chaos runs (the e2e suite's three chaos
seeds). And no per-phase cache/span/chaos boilerplate may remain in
``run_study`` itself — that is the engine's job now.
"""

import inspect
import os

import pytest

from repro import ChaosConfig, WorldConfig, run_study
from repro.core import pipeline

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
CHAOS_SEEDS = [1, 2, 3]  # the e2e chaos fixture seeds


def golden(name: str) -> str:
    with open(os.path.join(GOLDEN_DIR, name)) as fp:
        return fp.read()


@pytest.fixture(scope="module")
def clean_report() -> str:
    return golden("report_tiny_clean.txt")


class TestCleanEquivalence:
    def test_clean_run_matches_pre_refactor_golden(self, clean_report):
        assert run_study(WorldConfig.tiny()).report() == clean_report

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_worker_counts_match_golden(self, clean_report, n_workers):
        study = run_study(WorldConfig.tiny(), n_workers=n_workers)
        assert study.report() == clean_report


class TestWarmCacheEquivalence:
    def test_cold_then_warm_both_match_golden(self, tmp_path, clean_report):
        cache_dir = str(tmp_path / "cache")
        cold = run_study(WorldConfig.tiny(), cache=cache_dir)
        assert cold.report() == clean_report
        warm = run_study(WorldConfig.tiny(), cache=cache_dir)
        assert warm.report() == clean_report
        assert warm.store == cold.store
        assert warm.events == cold.events

    def test_warm_run_at_two_workers_matches_golden(self, tmp_path,
                                                    clean_report):
        cache_dir = str(tmp_path / "cache")
        run_study(WorldConfig.tiny(), cache=cache_dir)
        warm = run_study(WorldConfig.tiny(), cache=cache_dir, n_workers=2)
        assert warm.report() == clean_report


class TestChaosEquivalence:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_seeded_chaos_runs_match_golden(self, seed):
        study = run_study(WorldConfig.tiny(),
                          chaos=ChaosConfig.preset("moderate", seed=seed))
        assert study.chaos is not None and study.chaos.events
        assert study.report() == golden(f"report_tiny_chaos_seed{seed}.txt")


class TestNoBoilerplateInRunStudy:
    """The facade declares; the engine executes."""

    SOURCE = inspect.getsource(pipeline.run_study)

    @pytest.mark.parametrize("needle", [
        ".span(",            # no inline span management
        "fetch(", "save(",   # no inline cache traffic
        "warnings.warn",     # no inline warning blocks
        "import warnings",
        "annotate(",         # no inline span annotations
        "corrupt_store", "harden_feed", "wrap_transport",  # chaos wiring
    ])
    def test_run_study_has_no_per_phase_plumbing(self, needle):
        assert needle not in self.SOURCE

    def test_run_study_is_a_thin_facade(self):
        # One executor run, no hand-wired phase sequence.
        assert "executor.run" in self.SOURCE
        assert "STUDY_GRAPH" in self.SOURCE

    def test_every_wired_phase_is_declared_once(self):
        names = [p.name for p in pipeline.STUDY_GRAPH.phases]
        assert sorted(names) == sorted(set(names))
        for name in ("world", "telescope", "crawl", "feed_harden",
                     "join", "events"):
            assert name in names
