"""Cross-cutting tests that pin paper-specific semantics.

These encode interpretation decisions that would be easy to regress
silently: which events the §6.3 threshold admits, how aftermath windows
shape the measurement, and what the analyses may and may not consume.
"""

import pytest

from repro.core.events import extract_events
from repro.util.timeutil import DAY, parse_ts


class TestEventSemantics:
    def test_milru_is_case_study_not_event(self):
        """The paper's mil.ru NSSet hosts 3 domains: a §5 case study but
        below the 5-domain §6 event threshold."""
        from repro import WorldConfig, run_study

        study = run_study(WorldConfig(
            seed=11, start="2022-03-01", end_exclusive="2022-04-01",
            n_domains=1200, n_selfhosted_providers=10,
            n_filler_providers=8, attacks_per_month=100))
        milru = study.world.directory.get_by_name("mil.ru")
        event_nssets = {e.nsset_id for e in study.events}
        assert milru.nsset_id not in event_nssets
        # But the attack itself is in the feed and the join.
        mod_ips = set(study.world.providers["Russian MoD"].ns_ips)
        joined = [c for c in study.join.dns_direct_attacks
                  if c.victim_ip in mod_ips]
        assert joined

    def test_events_use_attack_window_not_impact_window(self, tiny_study):
        for event in tiny_study.events:
            assert event.series.window.start == event.attack.start
            assert event.series.window.end == event.attack.end

    def test_event_threshold_counts_domains_not_queries(self, tiny_study):
        # An NSSet with fewer than 5 hosted domains can never be an
        # event, no matter how many measurements oversampling yields.
        for event in tiny_study.events:
            assert event.info.n_domains >= tiny_study.config.event_min_domains


class TestAftermathSemantics:
    def test_dense_days_cover_aftermath(self, tiny_world):
        """December-style aftermath extends the dense recording window,
        not the telescope-visible attack."""
        transip = tiny_world.providers["TransIP"]
        ip = transip.nameservers[0].ip
        attacks = tiny_world.attacks_on_ip(ip)
        for attack in attacks:
            if attack.impairment.aftermath_s:
                aftermath_day = (attack.window.end
                                 + attack.impairment.aftermath_s) // DAY * DAY
                for nsset_id in tiny_world.directory.nssets_of_ip(ip):
                    if tiny_world.dense_days_of(nsset_id):
                        assert aftermath_day in \
                            tiny_world.dense_days_of(nsset_id)

    def test_aftermath_invisible_to_telescope(self, tiny_study):
        """Backscatter stops at the attack end even when the impact
        (aftermath) continues — the December TransIP signature."""
        transip_ips = set(tiny_study.world.providers["TransIP"].ns_ips)
        for attack in tiny_study.world.attacks:
            if attack.victim_ip not in transip_ips:
                continue
            if not attack.impairment.aftermath_s:
                continue
            inferred = [a for a in tiny_study.feed.attacks
                        if a.victim_ip == attack.victim_ip
                        and a.start < attack.window.end
                        and attack.window.start < a.end]
            for match in inferred:
                # The inferred end may be quantized up one window but
                # never extends into the aftermath.
                assert match.end <= attack.window.end + 600


class TestAnalysisPurity:
    def test_join_uses_only_datasets(self, tiny_study):
        """The join is reconstructible from the feed + directory alone
        (no world access)."""
        from repro.core.join import join_datasets

        rebuilt = join_datasets(tiny_study.feed.attacks,
                                tiny_study.world.directory,
                                tiny_study.open_resolvers)
        assert len(rebuilt) == len(tiny_study.join)
        assert ([c.klass for c in rebuilt.classified]
                == [c.klass for c in tiny_study.join.classified])

    def test_nsset_metadata_census_driven(self, tiny_study):
        """Anycast labels come from the (lower-bound) census, not from
        ground truth: a census-missed anycast /24 must degrade the
        label, never upgrade it."""
        truth_anycast = tiny_study.world.anycast_ips()
        for nsset_id, ips in tiny_study.world.directory.nssets.items():
            info = tiny_study.metadata.info(
                nsset_id, tiny_study.world.timeline.start)
            if info.anycast_label == "anycast":
                assert all(ip in truth_anycast or
                           tiny_study.world.nameservers_by_ip[ip].is_misconfig_target
                           for ip in ips if ip in tiny_study.world.nameservers_by_ip)

    def test_feed_never_contains_invisible_attacks(self, tiny_study):
        invisible_victims = {
            a.victim_ip for a in tiny_study.world.attacks
            if not a.telescope_visible}
        visible_victims = {
            a.victim_ip for a in tiny_study.world.attacks
            if a.telescope_visible}
        only_invisible = invisible_victims - visible_victims
        feed_victims = set(tiny_study.feed.victims())
        assert not (feed_victims & only_invisible)
