"""End-to-end chaos runs of the Figure-1 pipeline.

The acceptance contract for the fault-injection layer: under moderate
chaos the full study completes without crashing, poison records land on
the dead-letter topic with metadata, impaired analyses are *flagged*
(never silently wrong, never NaN), and with every fault probability at
zero the run is byte-identical to a clean one.
"""

import math

import pytest

from repro import ChaosConfig, WorldConfig, run_study
from repro.streaming import DeadLetter

# Two months / 1500 domains: big enough for a dozen events, small
# enough that a handful of chaos runs stays in CI budget.
CONFIG = WorldConfig(
    seed=42,
    start="2021-03-01",
    end_exclusive="2021-05-01",
    n_domains=1500,
    n_selfhosted_providers=25,
    n_filler_providers=10,
    attacks_per_month=400,
)

CHAOS_SEEDS = [1, 2, 3]


@pytest.fixture(scope="module")
def clean_study():
    return run_study(CONFIG)


@pytest.fixture(scope="module", params=CHAOS_SEEDS,
                ids=[f"seed-{s}" for s in CHAOS_SEEDS])
def chaos_study(request):
    chaos = ChaosConfig.preset("moderate", seed=request.param)
    return run_study(CONFIG, chaos=chaos)


def _walk_floats(obj, path="", out=None):
    """Collect every float reachable from an analysis object."""
    if out is None:
        out = []
    if isinstance(obj, float):
        out.append((path, obj))
    elif isinstance(obj, dict):
        for key, value in obj.items():
            _walk_floats(value, f"{path}[{key!r}]", out)
    elif isinstance(obj, (list, tuple)):
        for i, value in enumerate(obj):
            _walk_floats(value, f"{path}[{i}]", out)
    elif hasattr(obj, "__dict__"):
        for key, value in vars(obj).items():
            _walk_floats(value, f"{path}.{key}", out)
    return out


class TestChaosRunSurvives:
    def test_completes_and_injects(self, chaos_study):
        assert chaos_study.chaos is not None
        assert chaos_study.chaos.events, "moderate chaos must inject faults"
        assert chaos_study.events, "chaos must not wipe out all events"

    def test_event_counts_comparable_to_clean(self, clean_study, chaos_study):
        clean_n = len(clean_study.events)
        chaos_n = len(chaos_study.events)
        # Feed drops/poison can lose events, but moderate chaos must not
        # flatten the study (nor conjure events from nowhere).
        assert chaos_n >= max(1, clean_n // 3)
        assert chaos_n <= clean_n * 2

    def test_dead_letters_carry_metadata(self, chaos_study):
        injector = chaos_study.chaos
        # Moderate feed corruption virtually always poisons something;
        # if not, the run legitimately had no poison to capture.
        for letter in injector.dead_letters:
            assert isinstance(letter, DeadLetter)
            assert letter.job == "feed-validate"
            assert letter.error
            assert letter.reason
            assert letter.attempts >= 1
            assert letter.value is not None

    def test_feed_corruption_is_dead_lettered(self, chaos_study):
        injector = chaos_study.chaos
        n_corrupt = (injector.counts.get(("feed", "corrupt"), 0)
                     + injector.counts.get(("feed", "truncate"), 0))
        if n_corrupt:
            assert len(injector.dead_letters) == n_corrupt

    def test_degradation_is_flagged(self, chaos_study):
        injector = chaos_study.chaos
        store_damage = (injector.counts.get(("store", "missing_day"), 0)
                        + injector.counts.get(("store", "corrupt"), 0))
        if store_damage and chaos_study.events:
            assert chaos_study.degraded
        for event in chaos_study.degraded_events:
            assert event.series.degraded

    def test_no_nans_in_events(self, chaos_study):
        for event in chaos_study.events:
            for path, value in _walk_floats(event.series, path="series"):
                assert not math.isnan(value), f"NaN at {path}"

    def test_no_nans_in_analyses(self, chaos_study):
        for name in ("monthly", "failures", "impact", "resilience"):
            analysis = getattr(chaos_study, name)
            for path, value in _walk_floats(analysis, path=name):
                assert not math.isnan(value), f"NaN at {path}"

    def test_report_renders(self, chaos_study):
        report = chaos_study.report()
        assert report
        assert "nan" not in report.lower().replace("nanosec", "")

    def test_summary_renders(self, chaos_study):
        text = chaos_study.chaos.summary()
        assert "faults injected" in text


class TestNullChaosIsByteIdentical:
    def test_zero_probability_run_matches_clean(self, clean_study):
        null_study = run_study(CONFIG, chaos=ChaosConfig(seed=99))
        assert null_study.chaos is not None
        assert null_study.chaos.events == []
        assert not null_study.degraded
        assert null_study.report() == clean_study.report()


class TestChaosDeterminism:
    def test_same_seeds_reproduce_fault_log(self):
        config = WorldConfig.tiny()
        chaos = ChaosConfig.preset("moderate", seed=7)
        a = run_study(config, chaos=chaos)
        b = run_study(config, chaos=chaos)
        assert a.chaos.events == b.chaos.events
        assert len(a.events) == len(b.events)
        assert a.report() == b.report()
