"""End-to-end reproduction of the TransIP case study (§5.1).

Uses a dedicated world covering November 2020 - March 2021 so both the
December and the March attack fall inside the window with a measured
baseline before each.
"""

import pytest

from repro import WorldConfig, run_study
from repro.core.metrics import impact_series
from repro.telescope.feed import ppm_to_victim_pps
from repro.util.timeutil import HOUR, Window, parse_ts


@pytest.fixture(scope="module")
def study():
    config = WorldConfig(
        seed=7,
        start="2020-11-01",
        end_exclusive="2021-04-01",
        n_domains=2500,
        n_selfhosted_providers=20,
        n_filler_providers=10,
        attacks_per_month=200,
    )
    return run_study(config)


@pytest.fixture(scope="module")
def transip_nsset(study):
    record = next(d for d in study.world.directory.domains
                  if d.provider_name == "TransIP" and not d.misconfig
                  and d.secondary_provider is None)
    return record.nsset_id


DEC_WINDOW = Window(parse_ts("2020-11-30 22:00"), parse_ts("2020-12-01 12:30"))
MAR_WINDOW = Window(parse_ts("2021-03-01 19:00"), parse_ts("2021-03-02 01:00"))


class TestTelescopeView:
    def test_both_attacks_inferred(self, study):
        transip_ips = set(study.world.providers["TransIP"].ns_ips)
        dec = [a for a in study.feed.attacks
               if a.victim_ip in transip_ips
               and DEC_WINDOW.contains(a.start)]
        mar = [a for a in study.feed.attacks
               if a.victim_ip in transip_ips
               and MAR_WINDOW.contains(a.start)]
        assert len(dec) == 3   # A, B, C all visible (Table 2)
        assert len(mar) == 3

    def test_december_rate_extrapolation(self, study):
        # Table 2: nameserver A at 21.8 Kppm -> 124 Kpps.
        transip_ips = set(study.world.providers["TransIP"].ns_ips)
        dec = [a for a in study.feed.attacks
               if a.victim_ip in transip_ips and DEC_WINDOW.contains(a.start)]
        peak = max(a.max_ppm for a in dec)
        assert ppm_to_victim_pps(peak) == pytest.approx(124_000, rel=0.2)
        assert peak == pytest.approx(21_800, rel=0.2)

    def test_march_six_times_stronger(self, study):
        transip_ips = set(study.world.providers["TransIP"].ns_ips)
        dec_peak = max(a.max_ppm for a in study.feed.attacks
                       if a.victim_ip in transip_ips
                       and DEC_WINDOW.contains(a.start))
        mar_peak = max(a.max_ppm for a in study.feed.attacks
                       if a.victim_ip in transip_ips
                       and MAR_WINDOW.contains(a.start))
        assert 3.5 < mar_peak / dec_peak < 9.0   # paper: ~6x

    def test_attacker_ip_counts_magnitude(self, study):
        # Table 2: attacker IP counts in the millions.
        transip_ips = set(study.world.providers["TransIP"].ns_ips)
        mar = [a for a in study.feed.attacks
               if a.victim_ip in transip_ips and MAR_WINDOW.contains(a.start)]
        counts = sorted((a.inferred_attacker_ips() for a in mar), reverse=True)
        assert counts[0] == pytest.approx(7_000_000, rel=0.25)
        assert counts[-1] == pytest.approx(823_000, rel=0.25)


class TestOpenIntelView:
    def test_december_rtt_impairment(self, study, transip_nsset):
        # Paper: OpenINTEL measured a ~10x increase in resolution time.
        series = impact_series(study.store, transip_nsset, DEC_WINDOW)
        assert series.max_impact is not None
        assert series.max_impact > 5.0

    def test_december_negligible_timeouts(self, study, transip_nsset):
        series = impact_series(study.store, transip_nsset, DEC_WINDOW)
        # Paper Figure 3: a negligible fraction in December...
        assert series.failure_rate < 0.08

    def test_march_timeouts_near_twenty_percent(self, study, transip_nsset):
        series = impact_series(study.store, transip_nsset, MAR_WINDOW)
        # ...but ~20% during the March attack.
        assert 0.08 < series.failure_rate < 0.40

    def test_december_aftermath_persists(self, study, transip_nsset):
        # Paper Figure 2: impairment persisted ~8h past the attack on A
        # (which ends at midnight in our scenario).
        aftermath = Window(parse_ts("2020-12-01 01:00"),
                           parse_ts("2020-12-01 07:00"))
        series = impact_series(study.store, transip_nsset, aftermath)
        assert series.max_impact is not None
        assert series.max_impact > 2.0

    def test_december_impairment_ends_by_morning(self, study, transip_nsset):
        recovered = Window(parse_ts("2020-12-01 09:00"),
                           parse_ts("2020-12-01 12:00"))
        series = impact_series(study.store, transip_nsset, recovered)
        if series.max_impact is not None:
            assert series.max_impact < 3.0

    def test_march_impact_confined_to_telescope_window(self, study,
                                                       transip_nsset):
        # Paper: in March the impact window matched the telescope window.
        after = Window(parse_ts("2021-03-02 02:00"),
                       parse_ts("2021-03-02 08:00"))
        series = impact_series(study.store, transip_nsset, after)
        if series.max_impact is not None:
            assert series.max_impact < 3.0

    def test_march_worse_than_december(self, study, transip_nsset):
        dec = impact_series(study.store, transip_nsset, DEC_WINDOW)
        mar = impact_series(study.store, transip_nsset, MAR_WINDOW)
        assert mar.failure_rate > dec.failure_rate


class TestJoinView:
    def test_affected_domains_share(self, study):
        # TransIP hosts ~4% of the population; the paper's 776K domains
        # were ~8% of .nl + others. Shape check: the join attributes a
        # substantial domain count to the attack.
        transip_ips = set(study.world.providers["TransIP"].ns_ips)
        affected = max(c.affected_domains
                       for c in study.join.dns_direct_attacks
                       if c.victim_ip in transip_ips)
        assert affected > len(study.world.directory) * 0.02

    def test_nl_domains_two_thirds(self, study):
        transip = [d for d in study.world.directory.domains
                   if d.provider_name == "TransIP" and not d.misconfig]
        nl_share = sum(1 for d in transip if d.tld == "nl") / len(transip)
        assert 0.5 < nl_share < 0.8   # paper: ~two-thirds

    def test_third_party_web_share(self, study):
        transip = [d for d in study.world.directory.domains
                   if d.provider_name == "TransIP" and not d.misconfig]
        share = sum(1 for d in transip if d.third_party_web) / len(transip)
        assert 0.18 < share < 0.36    # paper §5.1.1: ~27%
