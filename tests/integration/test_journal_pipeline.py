"""Journal + profiling + cross-process capture through the pipeline.

The tentpole acceptance contract: a 4-worker study run with the journal
enabled yields ONE coherent trace — per-shard crawl spans grafted under
the parent's ``crawl`` phase with shard labels — while stdout and every
analysis output stay byte-identical to an uninstrumented run.
"""

import pytest

from repro import RunTelemetry, WorldConfig, run_study
from repro.obs import read_journal

CONFIG = WorldConfig.tiny()
N_WORKERS = 4


@pytest.fixture(scope="module")
def plain_study():
    return run_study(CONFIG, n_workers=N_WORKERS)


@pytest.fixture(scope="module")
def journaled(tmp_path_factory):
    path = tmp_path_factory.mktemp("journal") / "run.jsonl"
    telemetry = RunTelemetry.create()
    study = run_study(CONFIG, n_workers=N_WORKERS, telemetry=telemetry,
                      journal=str(path), profile=True)
    return study, read_journal(path)


class TestMergedTrace:
    def test_one_trace_with_per_shard_crawl_spans(self, journaled):
        study, _ = journaled
        roots = study.telemetry.tracer.roots
        assert [r.name for r in roots] == ["study"]
        crawl = next(c for c in roots[0].children if c.name == "crawl")
        shard_spans = [c for c in crawl.children
                       if c.name == "crawl.shard"]
        assert len(shard_spans) == N_WORKERS
        assert [s.meta["shard"] for s in shard_spans] == \
            list(range(N_WORKERS))
        for span in shard_spans:
            assert span.meta["n_shards"] == N_WORKERS
            assert span.meta["rows"] > 0
            assert span.duration is not None and span.duration >= 0

    def test_shard_rows_sum_to_the_store(self, journaled):
        study, _ = journaled
        crawl = next(c for c in study.telemetry.tracer.roots[0].children
                     if c.name == "crawl")
        shard_rows = sum(s.meta["rows"] for s in crawl.children
                         if s.name == "crawl.shard")
        assert shard_rows == study.store.n_measurements

    def test_per_shard_metrics_merge_alongside_totals(self, journaled):
        study, _ = journaled
        counters = study.telemetry.snapshot()["metrics"]["counters"]
        total = counters["repro.crawl.rows"]
        per_shard = [counters[f"repro.crawl.rows{{shard={n}}}"]
                     for n in range(N_WORKERS)]
        assert sum(per_shard) == total == study.store.n_measurements


class TestJournalContents:
    def test_run_and_phase_lifecycle(self, journaled):
        _, records = journaled
        types = [r["type"] for r in records]
        assert types[0] == "journal.open"
        assert types[-1] == "journal.close"
        assert "run.start" in types and "run.finish" in types
        started = {r["phase"] for r in records
                   if r["type"] == "phase.start"}
        finished = {r["phase"] for r in records
                    if r["type"] == "phase.finish"}
        assert started == finished
        assert {"world", "telescope", "crawl", "join", "events"} <= finished

    def test_crawl_worker_lifecycle_records(self, journaled):
        _, records = journaled
        starts = [r for r in records if r["type"] == "worker.start"
                  and r.get("surface") == "crawl"]
        finishes = [r for r in records if r["type"] == "worker.finish"
                    and r.get("surface") == "crawl"]
        assert len(starts) == len(finishes) == N_WORKERS
        assert [r["shard"] for r in finishes] == list(range(N_WORKERS))
        assert all(r["rows"] > 0 for r in finishes)

    def test_run_start_describes_the_run(self, journaled):
        _, records = journaled
        start = next(r for r in records if r["type"] == "run.start")
        assert start["n_workers"] == N_WORKERS
        assert start["profiled"] is True
        assert start["chaos"] is False

    def test_monotonic_envelope(self, journaled):
        _, records = journaled
        seqs = [r["seq"] for r in records]
        assert seqs == list(range(len(records)))
        ts = [r["t"] for r in records]
        assert ts == sorted(ts)


class TestDeterminism:
    """Journal + profiling observe, never perturb — even at 4 workers."""

    def test_report_is_byte_identical(self, plain_study, journaled):
        study, _ = journaled
        assert study.report() == plain_study.report()

    def test_stores_and_analyses_are_equal(self, plain_study, journaled):
        study, _ = journaled
        assert study.store == plain_study.store
        assert study.join.classified == plain_study.join.classified
        assert len(study.events) == len(plain_study.events)
        assert study.monthly.rows == plain_study.monthly.rows
