"""Scenario packs through the unmodified engine graph, end to end.

The contract under test: the three non-default packs run through the
same declared phase graph as the volumetric default — the pack nodes
are *conditional* (enabled/fallback, like the chaos fallback nodes),
never a fork — and selecting the default pack keeps the report
byte-identical to the pre-refactor golden.
"""

import dataclasses
import os

import pytest

from repro import WorldConfig, run_study
from repro.attacks.amplification import AmplificationParams
from repro.attacks.wartime import WartimeParams

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def golden(name: str) -> str:
    with open(os.path.join(GOLDEN_DIR, name)) as fp:
        return fp.read()


class TestDefaultPathByteIdentity:
    def test_volumetric_report_matches_pre_pack_golden(self, tiny_study):
        assert tiny_study.report() == golden("report_tiny_clean.txt")

    def test_explicit_volumetric_selection_is_identical(self, tiny_config,
                                                        tiny_study):
        config = dataclasses.replace(tiny_config,
                                     scenario_pack="volumetric")
        study = run_study(config)
        assert study.report() == tiny_study.report()

    def test_pack_nodes_fall_back_on_the_default_path(self, tiny_study):
        assert tiny_study.reflector_feed is None
        assert tiny_study.counterfactuals is None
        assert tiny_study.pack_analysis() is None


class TestAmplificationPipeline:
    @pytest.fixture(scope="class")
    def study(self, tiny_config):
        return run_study(dataclasses.replace(
            tiny_config, scenario_pack="amplification"))

    def test_reflector_feed_flows_through_the_graph(self, study):
        assert study.reflector_feed is not None
        assert len(study.reflector_feed) > 0

    def test_inference_validates_against_ground_truth(self, study):
        """The acceptance criterion: inferred reflector windows vs the
        seeded schedule."""
        analysis = study.pack_analysis()
        assert analysis.n_scheduled == AmplificationParams().n_attacks
        assert analysis.n_inferred >= analysis.n_matched
        assert analysis.recall >= 0.8
        assert analysis.mean_baf > 1.0

    def test_reflections_join_as_curated_feed_records(self, study):
        """The second curated feed reaches the unmodified join."""
        reflector_victims = set(study.reflector_feed.victims())
        joined_victims = {c.victim_ip for c in study.join.classified}
        assert reflector_victims & joined_victims

    def test_report_carries_the_pack_section(self, study):
        report = study.report()
        assert "Amplification pack (reflector-query branch)" in report
        assert "recall" in report


class TestWartimePipeline:
    @pytest.fixture(scope="class")
    def study(self, tiny_config):
        return run_study(dataclasses.replace(
            tiny_config, scenario_pack="wartime",
            pack_params=WartimeParams(start_day=2)))

    def test_waves_reach_the_schedule_and_events(self, study):
        analysis = study.pack_analysis()
        assert len(analysis.waves) == WartimeParams().n_waves
        assert analysis.n_attacks > 0
        for wave in analysis.waves:
            assert wave.n_attacks > 0
            assert wave.n_orgs > 1  # correlated: many orgs per wave

    def test_visibility_mix_spans_both_classes(self, study):
        analysis = study.pack_analysis()
        visible = sum(w.spoofed_visible for w in analysis.waves)
        assert 0 < visible < analysis.n_attacks

    def test_report_carries_the_wave_timeline(self, study):
        report = study.report()
        assert "Wartime pack (RU waves)" in report
        assert "wave 1:" in report and "wave 3:" in report


class TestDefensePipeline:
    @pytest.fixture(scope="class")
    def study(self, tiny_config):
        return run_study(dataclasses.replace(
            tiny_config, scenario_pack="defense"))

    def test_counterfactuals_flow_through_the_graph(self, study):
        report = study.counterfactuals
        assert report is not None
        assert report.n_attacks > 0
        assert study.pack_analysis() is report

    def test_deltas_are_reductions(self, study):
        for row in study.counterfactuals.harmful_rows():
            for layer in study.counterfactuals.layers:
                assert row.delta(layer.name) >= -1e-9

    def test_schedule_and_events_match_the_default_run(self, study,
                                                       tiny_study):
        """Counterfactuals are an analysis, not an intervention: the
        measured pipeline is untouched."""
        assert len(study.world.attacks) == len(tiny_study.world.attacks)
        assert [e.nsset_id for e in study.events] == \
            [e.nsset_id for e in tiny_study.events]

    def test_report_carries_the_delta_table(self, study):
        report = study.report()
        assert "Defense pack (mitigation counterfactuals)" in report
        assert "layered" in report
        assert "neutralizes" in report


class TestGraphRendering:
    def test_conditional_pack_nodes_render_in_the_dag(self):
        from repro.core.pipeline import study_graph

        rendered = study_graph().render_text()
        assert "pack_telescope" in rendered
        assert "pack_feed" in rendered
        assert "counterfactuals" in rendered

    def test_join_consumes_the_merged_feed_slot(self):
        from repro.core.pipeline import STUDY_GRAPH

        join = next(p for p in STUDY_GRAPH.phases if p.name == "join")
        assert "curated_feed" in join.inputs
