"""End-to-end pipeline and configuration tests."""

import pytest

from repro import Study, WorldConfig, build_world, run_study
from repro.world.config import PAPER_TOTAL_ATTACKS


class TestWorldConfig:
    def test_defaults_cover_paper_window(self):
        config = WorldConfig()
        assert len(list(config.timeline.months())) == 17

    def test_paper_scale(self):
        config = WorldConfig(attacks_per_month=2000)
        expected = 2000 * 17 / PAPER_TOTAL_ATTACKS
        assert config.paper_scale() == pytest.approx(expected)

    def test_schedule_derived(self):
        config = WorldConfig()
        assert config.schedule.attacks_per_month == config.attacks_per_month
        assert config.schedule.dns_attack_fraction == config.dns_attack_fraction

    def test_scaled(self):
        config = WorldConfig().scaled(0.5)
        assert config.n_domains == 10_000
        assert config.attacks_per_month == 1_000
        assert config.schedule.attacks_per_month == 1_000

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            WorldConfig().scaled(0)

    @pytest.mark.parametrize("kwargs", [
        {"n_domains": 0},
        {"misconfig_fraction": 2.0},
        {"headroom": 0.0},
        {"dns_attack_fraction": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorldConfig(**kwargs)

    def test_tiny_and_small_presets(self):
        assert WorldConfig.tiny().n_domains < WorldConfig.small().n_domains


class TestStudyPipeline:
    def test_study_bundle_types(self, tiny_study):
        assert isinstance(tiny_study, Study)
        assert tiny_study.feed.attacks
        assert tiny_study.store.n_measurements > 0
        assert tiny_study.events

    def test_analyses_cached(self, tiny_study):
        assert tiny_study.monthly is tiny_study.monthly
        assert tiny_study.resilience is tiny_study.resilience

    def test_report_renders_all_sections(self, tiny_study):
        report = tiny_study.report()
        for marker in ("Monthly attack activity", "Targeted services",
                       "Resolution failures", "RTT impact", "Correlations",
                       "Resilience efficacy", "Top attacked ASNs",
                       "Top attacked IPs", "Telescope visibility"):
            assert marker in report

    def test_run_study_with_prebuilt_world(self, tiny_world):
        study = run_study(world=tiny_world)
        assert study.world is tiny_world
        assert study.config is tiny_world.config

    def test_reproducible_end_to_end(self, tiny_config):
        a = run_study(tiny_config)
        b = run_study(tiny_config)
        assert len(a.feed.attacks) == len(b.feed.attacks)
        assert a.store.n_measurements == b.store.n_measurements
        assert len(a.events) == len(b.events)
        assert [e.nsset_id for e in a.events] == [e.nsset_id for e in b.events]
        assert a.monthly.total_attacks == b.monthly.total_attacks

    def test_different_seeds_differ(self):
        a = run_study(WorldConfig.tiny(seed=1))
        b = run_study(WorldConfig.tiny(seed=2))
        assert [a0.victim_ip for a0 in a.feed.attacks] != \
            [b0.victim_ip for b0 in b.feed.attacks]

    def test_progress_callback(self, tiny_config):
        ticks = []
        run_study(tiny_config, progress=lambda i, n: ticks.append(i))
        assert ticks and ticks == sorted(ticks)

    def test_telescope_misses_some_ground_truth(self, tiny_study):
        # Reflected/unspoofed attacks are invisible: the feed must be a
        # strict subset of ground truth (paper §4.3).
        assert len(tiny_study.feed.attacks) < len(tiny_study.world.attacks)

    def test_events_reference_real_nssets(self, tiny_study):
        registry = tiny_study.world.directory.nssets
        for event in tiny_study.events:
            assert registry.ips_of(event.nsset_id)


class TestParallelStudyEquivalence:
    """run_study(n_workers=N) must change wall clock only — never data."""

    @pytest.fixture(scope="class")
    def serial(self, tiny_config):
        return run_study(tiny_config)

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_worker_count_changes_nothing(self, tiny_config, serial,
                                          n_workers):
        study = run_study(tiny_config, n_workers=n_workers)
        assert study.store == serial.store  # bit-for-bit
        assert len(study.events) == len(serial.events)
        for ours, theirs in zip(study.events, serial.events):
            assert ours.nsset_id == theirs.nsset_id
            assert ours.attack == theirs.attack
            assert ours.series == theirs.series
        assert study.monthly == serial.monthly
        assert study.failures == serial.failures
        assert study.impact == serial.impact

    def test_parallel_progress_callback(self, tiny_config):
        ticks = []
        run_study(tiny_config, n_workers=2,
                  progress=lambda done, n: ticks.append((done, n)))
        assert ticks == [(1, 2), (2, 2)]

    def test_chaos_forces_serial_with_warning(self, tiny_config):
        from repro import ChaosConfig

        chaos = ChaosConfig.preset("light", seed=1)
        with pytest.warns(RuntimeWarning, match="serial"):
            study = run_study(tiny_config, chaos=chaos, n_workers=4)
        assert study.chaos is not None
        # The forced-serial chaos run must equal the explicit serial one.
        serial = run_study(tiny_config, chaos=ChaosConfig.preset(
            "light", seed=1))
        assert study.store == serial.store


class TestDegradedPredicate:
    def test_rejected_rows_flag_the_study(self, tiny_config):
        # A chaos schedule that ONLY damages RTT rows at store ingest:
        # no feed faults, no aggregate corruption, no transport faults —
        # so the join is clean and no event is degraded. The rejected
        # rows alone must still flag the study (PR 1's contract: "True
        # when any pipeline stage ran on impaired inputs").
        from repro import ChaosConfig
        from repro.chaos.policy import FaultPolicy

        chaos = ChaosConfig(seed=3, ingest=FaultPolicy(corrupt_p=0.01))
        study = run_study(tiny_config, chaos=chaos)
        assert study.store.n_rejected > 0
        assert not study.join.degraded
        assert not study.degraded_events
        assert study.degraded

    def test_clean_run_not_degraded(self, tiny_study):
        assert tiny_study.store.n_rejected == 0
        assert not tiny_study.degraded
