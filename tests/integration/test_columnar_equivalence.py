"""Columnar-path equivalence: the batch refactor's acceptance bar.

``run_study(columnar=True)`` routes the telescope inference, the crawl
ingest, and the event extraction through :mod:`repro.columnar` batch
columns. Its output must be **bit-identical** to the object path — the
same pre-refactor goldens the engine suite asserts — for a clean run,
1/2/4 workers, and warm/cold cache. Chaos runs must force the object
path (the injector hooks per-row store ingest) with a
:class:`RuntimeWarning` and still match the chaos goldens.
"""

import os
import warnings

import pytest

from repro import ChaosConfig, WorldConfig, run_study
from repro.core.pipeline import COLUMNAR_CHAOS_REASON

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
CHAOS_SEEDS = [1, 2, 3]  # the e2e chaos fixture seeds


def golden(name: str) -> str:
    with open(os.path.join(GOLDEN_DIR, name)) as fp:
        return fp.read()


@pytest.fixture(scope="module")
def clean_report() -> str:
    return golden("report_tiny_clean.txt")


class TestColumnarCleanEquivalence:
    def test_columnar_run_matches_golden(self, clean_report):
        study = run_study(WorldConfig.tiny(), columnar=True)
        assert study.report() == clean_report

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_columnar_worker_counts_match_golden(self, clean_report,
                                                 n_workers):
        study = run_study(WorldConfig.tiny(), columnar=True,
                          n_workers=n_workers)
        assert study.report() == clean_report

    def test_columnar_store_equals_object_store(self):
        obj = run_study(WorldConfig.tiny())
        col = run_study(WorldConfig.tiny(), columnar=True)
        # Bit-identity of the full dataset surface, not just the report.
        assert col.store == obj.store
        assert col.feed.attacks == obj.feed.attacks
        assert col.feed.records == obj.feed.records
        assert col.events == obj.events


class TestColumnarWarmCacheEquivalence:
    def test_cold_columnar_then_warm_object_match(self, tmp_path,
                                                  clean_report):
        cache_dir = str(tmp_path / "cache")
        cold = run_study(WorldConfig.tiny(), columnar=True, cache=cache_dir)
        assert cold.report() == clean_report
        # The flag does not enter the fingerprint: a warm object run
        # reads the columnar run's artifacts, and vice versa.
        warm = run_study(WorldConfig.tiny(), cache=cache_dir)
        assert warm.report() == clean_report
        assert warm.store == cold.store
        assert warm.events == cold.events

    def test_cold_object_then_warm_columnar_match(self, tmp_path,
                                                  clean_report):
        cache_dir = str(tmp_path / "cache")
        run_study(WorldConfig.tiny(), cache=cache_dir)
        warm = run_study(WorldConfig.tiny(), columnar=True, cache=cache_dir,
                         n_workers=2)
        assert warm.report() == clean_report


class TestColumnarChaosGate:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_chaos_forces_object_path_and_matches_golden(self, seed):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            study = run_study(
                WorldConfig.tiny(), columnar=True,
                chaos=ChaosConfig.preset("moderate", seed=seed))
        reasons = [str(w.message) for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert COLUMNAR_CHAOS_REASON in reasons
        assert study.report() == golden(f"report_tiny_chaos_seed{seed}.txt")
