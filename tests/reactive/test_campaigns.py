"""Campaign planning, admission control, and deterministic shedding."""

import pytest

from repro.obs import MetricsRegistry
from repro.reactive.campaigns import (
    Campaign,
    CampaignScheduler,
    CampaignState,
    plan_campaign,
)
from repro.telescope.rsdos import InferredAttack
from repro.util.timeutil import FIVE_MINUTES, HOUR, MINUTE


def make_attack(victim_ip=1, start=1000_000_000, duration=HOUR):
    start = (start // FIVE_MINUTES) * FIVE_MINUTES
    return InferredAttack(
        victim_ip=victim_ip, start=start, end=start + duration,
        n_packets=100, max_ppm=50.0, max_slash16=3, n_unique_sources=10,
        proto=17, first_port=53, n_ports=1, n_windows=duration // FIVE_MINUTES)


def make_campaign(victim_ip=1, start=1000_000_000, n_domains=3, impact=None,
                  report_ts=None, sla=10 * MINUTE, post=HOUR):
    attack = make_attack(victim_ip=victim_ip, start=start)
    report_ts = report_ts if report_ts is not None else attack.start
    return Campaign(
        attack=attack,
        domain_ids=tuple(range(100, 100 + n_domains)),
        impact=impact if impact is not None else n_domains,
        report_ts=report_ts,
        deadline=report_ts + sla,
        ends_at=attack.end + post)


class TestPlanCampaign:
    def test_plans_related_domains(self, tiny_world):
        ns_ip = sorted(tiny_world.directory.nameserver_ips())[0]
        attack = make_attack(victim_ip=ns_ip)
        campaign = plan_campaign(
            tiny_world, attack, attack.start, probes_per_window=50,
            trigger_sla_s=10 * MINUTE, post_attack_s=HOUR, seed=1)
        assert campaign is not None
        expected = tiny_world.directory.domains_of_ip(ns_ip)
        assert set(campaign.domain_ids) <= expected
        assert campaign.impact == len(expected)
        assert campaign.deadline == attack.start + 10 * MINUTE
        assert campaign.ends_at == attack.end + HOUR
        assert campaign.state == CampaignState.WAITING

    def test_none_when_victim_serves_nothing(self, tiny_world):
        attack = make_attack(victim_ip=1)  # not a nameserver
        assert plan_campaign(
            tiny_world, attack, attack.start, probes_per_window=50,
            trigger_sla_s=600, post_attack_s=HOUR, seed=1) is None

    def test_sampling_is_order_independent(self, tiny_world):
        """The same attack plans the same domains no matter what was
        planned before it — the property crash replay depends on."""
        victims = sorted(
            ip for ip in tiny_world.directory.nameserver_ips()
            if len(tiny_world.directory.domains_of_ip(ip)) > 2)[:3]
        kwargs = dict(probes_per_window=2, trigger_sla_s=600,
                      post_attack_s=HOUR, seed=9)
        attacks = [make_attack(victim_ip=ip) for ip in victims]
        forward = [plan_campaign(tiny_world, a, a.start, **kwargs).domain_ids
                   for a in attacks]
        backward = [plan_campaign(tiny_world, a, a.start, **kwargs).domain_ids
                    for a in reversed(attacks)]
        assert forward == list(reversed(backward))

    def test_sampled_domains_are_sorted(self, tiny_world):
        victim = max(tiny_world.directory.nameserver_ips(),
                     key=lambda ip: len(tiny_world.directory.domains_of_ip(ip)))
        campaign = plan_campaign(
            tiny_world, make_attack(victim_ip=victim), 0,
            probes_per_window=3, trigger_sla_s=600, post_attack_s=HOUR,
            seed=1)
        assert list(campaign.domain_ids) == sorted(campaign.domain_ids)
        assert len(campaign.domain_ids) == 3


class TestCampaignSerialization:
    def test_roundtrip(self):
        campaign = make_campaign()
        campaign.state = CampaignState.ACTIVE
        campaign.allocation = 2
        campaign.triggered_at = campaign.deadline
        campaign.cursor = 7
        campaign.n_probes = 42
        campaign.flag("late")
        restored = Campaign.from_dict(campaign.to_dict())
        assert restored == campaign
        assert restored.attack == campaign.attack
        assert restored.degraded

    def test_flag_is_idempotent(self):
        campaign = make_campaign()
        campaign.flag("late")
        campaign.flag("late")
        assert campaign.reasons == ("late",)


class TestAdmission:
    def test_unbounded_budget_admits_everything(self):
        sched = CampaignScheduler(probes_per_window=5)
        w = 1000_000_000
        for ip in (3, 1, 2):
            sched.submit(make_campaign(victim_ip=ip, start=w))
        sched.admit_tick(w)
        assert len(sched.active) == 3
        assert not sched.waitlist
        assert all(c.state == CampaignState.ACTIVE for c in sched.active)
        assert all(not c.degraded for c in sched.active)

    def test_trigger_latency_floor_is_the_sla(self):
        sched = CampaignScheduler(probes_per_window=5)
        w = 1000_000_000
        campaign = make_campaign(start=w, sla=10 * MINUTE)
        sched.submit(campaign)
        sched.admit_tick(w)
        assert campaign.triggered_at == campaign.deadline
        assert campaign.trigger_latency_s == 10 * MINUTE
        assert "late" not in campaign.reasons

    def test_late_admission_is_flagged(self):
        sched = CampaignScheduler(probes_per_window=5)
        w = 1000_000_000
        campaign = make_campaign(start=w, report_ts=w, sla=10 * MINUTE)
        sched.submit(campaign)
        late_w = w + 20 * MINUTE
        sched.admit_tick(late_w)
        assert campaign.state == CampaignState.ACTIVE
        assert campaign.triggered_at == late_w
        assert "late" in campaign.reasons

    def test_budget_prefers_newest_then_highest_impact(self):
        sched = CampaignScheduler(probes_per_window=4, probe_budget=8)
        w = 1000_000_000
        old = make_campaign(victim_ip=1, start=w - FIVE_MINUTES, n_domains=4,
                            report_ts=w - FIVE_MINUTES)
        new_small = make_campaign(victim_ip=2, start=w, n_domains=4,
                                  impact=4, report_ts=w)
        new_big = make_campaign(victim_ip=3, start=w, n_domains=4,
                                impact=40, report_ts=w)
        for c in (old, new_small, new_big):
            sched.submit(c)
        sched.admit_tick(w)
        # budget 8 fits two full campaigns: both new ones beat the old
        assert new_big.state == CampaignState.ACTIVE
        assert new_small.state == CampaignState.ACTIVE
        assert old.state == CampaignState.WAITING

    def test_throttled_admission_is_flagged(self):
        sched = CampaignScheduler(probes_per_window=4, probe_budget=6,
                                  min_allocation=1)
        w = 1000_000_000
        first = make_campaign(victim_ip=1, start=w, n_domains=4, impact=9)
        second = make_campaign(victim_ip=2, start=w, n_domains=4, impact=8)
        sched.submit(first)
        sched.submit(second)
        sched.admit_tick(w)
        assert first.allocation == 4 and not first.degraded
        assert second.allocation == 2
        assert "throttled" in second.reasons
        assert sched.in_flight == 6

    def test_min_allocation_blocks_sub_minimum_grants(self):
        sched = CampaignScheduler(probes_per_window=4, probe_budget=5,
                                  min_allocation=3)
        w = 1000_000_000
        first = make_campaign(victim_ip=1, start=w, n_domains=4, impact=9)
        second = make_campaign(victim_ip=2, start=w, n_domains=4, impact=8)
        sched.submit(first)
        sched.submit(second)
        sched.admit_tick(w)
        assert first.state == CampaignState.ACTIVE
        # only 1 slot left < min_allocation: wait rather than starve
        assert second.state == CampaignState.WAITING

    def test_stale_waiters_are_shed_loudly(self):
        registry = MetricsRegistry()
        sched = CampaignScheduler(probes_per_window=4, probe_budget=4,
                                  shed_after_s=30 * MINUTE, metrics=registry)
        w = 1000_000_000
        hog = make_campaign(victim_ip=1, start=w, n_domains=4)
        starved = make_campaign(victim_ip=2, start=w, n_domains=4, impact=1)
        sched.submit(hog)
        sched.submit(starved)
        sched.admit_tick(w)
        assert starved.state == CampaignState.WAITING
        sched.admit_tick(w + 31 * MINUTE)
        assert starved.state == CampaignState.SHED
        assert "shed" in starved.reasons
        assert starved.shed_at == w + 31 * MINUTE
        assert starved in sched.finished
        shed = registry.counter("repro.reactive.shed", reason="overload")
        assert shed.value == 1

    def test_finish_frees_budget_for_waiters(self):
        sched = CampaignScheduler(probes_per_window=4, probe_budget=4,
                                  shed_after_s=2 * HOUR)
        w = 1000_000_000
        hog = make_campaign(victim_ip=1, start=w, n_domains=4, post=0)
        waiter = make_campaign(victim_ip=2, start=w, n_domains=4, impact=1)
        sched.submit(hog)
        sched.submit(waiter)
        sched.admit_tick(w)
        assert waiter.state == CampaignState.WAITING
        # hog ends (post=0 => ends_at == attack.end)
        end_tick = hog.ends_at
        sched.finish_tick(end_tick)
        assert hog.state == CampaignState.DONE
        assert sched.in_flight == 0
        sched.admit_tick(end_tick)
        assert waiter.state == CampaignState.ACTIVE
        assert "late" in waiter.reasons  # it waited past its deadline


class TestProbeLayout:
    def test_probes_spread_over_window_in_deadline_order(self):
        fired = []
        sched = CampaignScheduler(
            probes_per_window=2,
            on_probe=lambda c, d, ts: fired.append((c.victim_ip, d, ts)))
        w = 1000_000_000
        urgent = make_campaign(victim_ip=1, start=w, n_domains=2,
                               report_ts=w, sla=5 * MINUTE)
        relaxed = make_campaign(victim_ip=2, start=w, n_domains=2,
                                report_ts=w, sla=10 * MINUTE)
        sched.submit(relaxed)
        sched.submit(urgent)
        sched.admit_tick(w)
        probe_w = max(c.first_window for c in sched.active)
        sched.run_until(probe_w)
        sched.schedule_window(probe_w)
        n = sched.run_until(probe_w + FIVE_MINUTES)
        assert n == 4
        # allocation 2 => spacing 150s, urgent (earlier deadline) first
        # at each instant
        ts_by_victim = {}
        for victim, domain, ts in fired:
            ts_by_victim.setdefault(victim, []).append(ts)
        assert ts_by_victim[1] == [probe_w, probe_w + 150]
        assert ts_by_victim[2] == [probe_w, probe_w + 150]
        assert [v for v, _, ts in fired if ts == probe_w] == [1, 2]

    def test_round_robin_cursor_advances_across_windows(self):
        fired = []
        sched = CampaignScheduler(
            probes_per_window=2,
            on_probe=lambda c, d, ts: fired.append(d))
        w = 1000_000_000
        campaign = make_campaign(victim_ip=1, start=w, n_domains=3)
        sched.submit(campaign)
        sched.admit_tick(w)
        start = campaign.first_window
        for probe_w in range(start, start + 3 * FIVE_MINUTES, FIVE_MINUTES):
            sched.run_until(probe_w)
            sched.schedule_window(probe_w)
        sched.run_until(start + 3 * FIVE_MINUTES)
        # 2 probes/window over domains (100, 101, 102), round-robin
        assert fired == [100, 101, 102, 100, 101, 102]

    def test_no_probes_before_first_window_or_after_end(self):
        fired = []
        sched = CampaignScheduler(
            probes_per_window=2,
            on_probe=lambda c, d, ts: fired.append(ts))
        w = 1000_000_000
        campaign = make_campaign(victim_ip=1, start=w, post=0)
        sched.submit(campaign)
        sched.admit_tick(w)
        assert sched.schedule_window(w) == 0  # before first_window
        sched.run_until(campaign.ends_at)
        sched.scheduler.now = campaign.ends_at
        assert sched.schedule_window(campaign.ends_at) == 0  # past the end


class TestCheckpointRestore:
    def test_roundtrip_preserves_everything(self):
        sched = CampaignScheduler(probes_per_window=4, probe_budget=4)
        w = 1000_000_000
        active = make_campaign(victim_ip=1, start=w, n_domains=4)
        waiting = make_campaign(victim_ip=2, start=w, n_domains=4, impact=1)
        sched.submit(active)
        sched.submit(waiting)
        sched.admit_tick(w)
        state = sched.checkpoint()
        fresh = CampaignScheduler(probes_per_window=4, probe_budget=4)
        fresh.restore(state, now=w + FIVE_MINUTES)
        assert fresh.in_flight == sched.in_flight == 4
        assert [c.key for c in fresh.active] == [active.key]
        assert [c.key for c in fresh.waitlist] == [waiting.key]
        assert fresh.active[0] == active
        assert fresh.scheduler.now == w + FIVE_MINUTES
        assert fresh.scheduler.pending == 0

    def test_checkpoint_rejects_mid_window_state(self):
        sched = CampaignScheduler(probes_per_window=2)
        w = 1000_000_000
        campaign = make_campaign(victim_ip=1, start=w)
        sched.submit(campaign)
        sched.admit_tick(w)
        probe_w = campaign.first_window
        sched.run_until(probe_w)
        sched.schedule_window(probe_w)
        with pytest.raises(AssertionError):
            sched.checkpoint()

    def test_restored_scheduler_is_json_safe(self):
        import json

        sched = CampaignScheduler(probes_per_window=2)
        sched.submit(make_campaign())
        sched.admit_tick(1000_000_000)
        encoded = json.dumps(sched.checkpoint())
        fresh = CampaignScheduler(probes_per_window=2)
        fresh.restore(json.loads(encoded), now=0)
        assert len(fresh.active) == 1


class TestValidation:
    def test_constructor_bounds(self):
        with pytest.raises(ValueError):
            CampaignScheduler(probes_per_window=0)
        with pytest.raises(ValueError):
            CampaignScheduler(probes_per_window=5, probe_budget=0)
        with pytest.raises(ValueError):
            CampaignScheduler(probes_per_window=5, min_allocation=6)
        with pytest.raises(ValueError):
            CampaignScheduler(probes_per_window=5, shed_after_s=-1)
