"""The reactive service end to end: accounting, recovery, backpressure."""

import pytest

from repro.chaos.injector import FaultInjector
from repro.chaos.policy import ChaosConfig, FaultPolicy
from repro.obs import RunTelemetry
from repro.reactive import (
    CampaignState,
    ReactiveService,
    WorkerKilled,
    fast_transport,
    replay_transport,
    synthetic_triggers,
)
from repro.streaming import TopicFull
from repro.util.timeutil import DAY, FIVE_MINUTES, HOUR, MINUTE, window_start

pytestmark = pytest.mark.filterwarnings("ignore")


@pytest.fixture(scope="module")
def world(tiny_world):
    return tiny_world


@pytest.fixture(scope="module")
def triggers(world):
    return synthetic_triggers(world, 40, seed=7, invalid_share=0.1)


def make_service(world, **overrides):
    kwargs = dict(probes_per_window=4, post_attack_s=2 * HOUR,
                  probe_budget=24, transport=fast_transport(seed=1),
                  checkpoint_every=3)
    kwargs.update(overrides)
    return ReactiveService(world, **kwargs)


class TestAccounting:
    def test_every_trigger_is_accounted(self, world, triggers):
        report = make_service(world).run(triggers)
        c = report.counts
        assert c["triggers"] == len(triggers)
        assert c["unaccounted"] == 0
        assert (c["feed_shed"] + c["invalid"] + c["ignored"]
                + c["done"] + c["shed"]) == c["triggers"]

    def test_invalid_triggers_reach_the_dlq(self, world, triggers):
        service = make_service(world)
        report = service.run(triggers)
        assert report.counts["invalid"] > 0
        dlq = service._broker.topic("rsdos-triggers.dlq")
        assert len(dlq) == report.counts["invalid"]
        reasons = {r.value.reason for r in dlq.read(0)}
        assert any("trigger-schema" in reason for reason in reasons)

    def test_probe_counts_match_the_store(self, world, triggers):
        report = make_service(world).run(triggers)
        assert report.counts["probes"] == len(report.store) > 0

    def test_degradation_is_flagged_never_silent(self, world, triggers):
        report = make_service(world, probe_budget=8).run(triggers)
        c = report.counts
        assert c["shed"] + c["throttled"] + c["late"] > 0
        for campaign in report.campaigns:
            if campaign.state == CampaignState.SHED:
                assert "shed" in campaign.reasons
        assert len(report.degraded_campaigns()) >= c["shed"]
        assert c["unaccounted"] == 0

    def test_campaigns_end_exactly_at_the_post_attack_tail(self, world):
        """Paper SLO: probing covers the attack plus the full tail."""
        trigger = synthetic_triggers(world, 1, seed=3)[0]
        report = make_service(world, post_attack_s=DAY,
                              probe_budget=None).run([trigger])
        campaign = next(c for c in report.campaigns
                        if c.state == CampaignState.DONE)
        assert campaign.ends_at == trigger.end + DAY
        # the last probing window starts before ends_at (the layout may
        # finish a started window, like the legacy platform's)
        last_probe = max(p.ts for p in report.store.probes)
        assert window_start(last_probe) < campaign.ends_at
        assert campaign.ends_at - last_probe <= FIVE_MINUTES
        first_probe = min(p.ts for p in report.store.probes)
        assert first_probe >= window_start(campaign.triggered_at)

    def test_trigger_sla_met_or_flagged(self, world, triggers):
        report = make_service(world).run(triggers)
        for campaign in report.campaigns:
            if campaign.state != CampaignState.DONE:
                continue
            if campaign.trigger_latency_s > 10 * MINUTE:
                assert "late" in campaign.reasons

    def test_summary_is_deterministic(self, world, triggers):
        first = make_service(world).run(triggers)
        second = make_service(world).run(triggers)
        assert first.summary() == second.summary()
        assert first.store_digest() == second.store_digest()


class TestRecovery:
    @pytest.mark.parametrize("chaos_seed", [1, 2, 3])
    def test_killed_worker_recovers_bit_identical(self, world, triggers,
                                                  chaos_seed):
        clean = make_service(world).run(triggers)
        injector = FaultInjector(
            ChaosConfig.reactive_preset("heavy", seed=chaos_seed))
        chaotic = make_service(world).run(triggers, injector=injector)
        assert chaotic.counts["kills"] > 0
        assert chaotic.counts["restores"] == chaotic.counts["kills"]
        assert chaotic.store_digest() == clean.store_digest()
        assert chaotic.summary() == clean.summary()

    def test_recovery_with_world_transport(self, world, triggers):
        """The default replay-safe wrapper over the world's stateful
        transport is also exactly-once."""
        clean = ReactiveService(world, probes_per_window=3,
                                post_attack_s=HOUR, probe_budget=12)
        base = clean.run(triggers[:8])
        chaotic = ReactiveService(world, probes_per_window=3,
                                  post_attack_s=HOUR, probe_budget=12)
        injector = FaultInjector(ChaosConfig.reactive_preset("heavy", seed=4))
        faulted = chaotic.run(triggers[:8], injector=injector)
        assert faulted.counts["kills"] > 0
        assert faulted.summary() == base.summary()

    def test_restore_cap_is_enforced(self, world, triggers):
        injector = FaultInjector(ChaosConfig(
            seed=1, worker=FaultPolicy(crash_p=1.0)))
        with pytest.raises(RuntimeError, match="restore cap"):
            make_service(world).run(triggers, injector=injector,
                                    max_restores=3)

    def test_chaos_summary_reports_kills_separately(self, world, triggers):
        injector = FaultInjector(
            ChaosConfig.reactive_preset("moderate", seed=1))
        report = make_service(world).run(triggers, injector=injector)
        assert f"kills={report.counts['kills']}" in report.chaos_summary()
        assert "kills" not in report.summary()


class TestBackpressure:
    def test_block_policy_loses_nothing(self, world, triggers):
        report = make_service(world, feed_capacity=4,
                              backpressure="block").run(triggers)
        assert report.counts["feed_shed"] == 0
        assert report.counts["unaccounted"] == 0

    def test_block_policy_is_deterministic(self, world, triggers):
        """Backpressure delays ingestion (decisions can differ from an
        unbounded batch run, surfacing as ``late`` flags) but the
        bounded pipeline itself is fully deterministic."""
        first = make_service(world, feed_capacity=4,
                             backpressure="block").run(triggers)
        second = make_service(world, feed_capacity=4,
                              backpressure="block").run(triggers)
        assert first.summary() == second.summary()

    def test_block_plus_chaos_stays_exactly_once(self, world, triggers):
        clean = make_service(world, feed_capacity=4,
                             backpressure="block").run(triggers)
        injector = FaultInjector(ChaosConfig.reactive_preset("heavy", seed=5))
        chaotic = make_service(world, feed_capacity=4,
                               backpressure="block").run(
            triggers, injector=injector)
        assert chaotic.counts["kills"] > 0
        assert chaotic.summary() == clean.summary()

    def test_shed_oldest_is_counted(self, world, triggers):
        report = make_service(world, feed_capacity=4,
                              backpressure="shed_oldest").run(triggers)
        assert report.counts["feed_shed"] > 0
        assert report.counts["unaccounted"] == 0

    def test_reject_raises(self, world, triggers):
        service = make_service(world, feed_capacity=2, backpressure="reject")
        with pytest.raises(TopicFull):
            service.run(triggers)


class TestTransports:
    def test_fast_transport_is_pure(self):
        transport = fast_transport(seed=3, loss=0.2)
        replies = [transport(9, "example.nl", None, 12345) for _ in range(3)]
        assert len({(r.rtt_ms, r.rcode) for r in replies}) == 1

    def test_fast_transport_losses(self):
        transport = fast_transport(seed=3, loss=1.0)
        assert not transport(9, "x", None, 1).answered
        transport = fast_transport(seed=3, loss=0.0)
        assert transport(9, "x", None, 1).answered

    def test_replay_transport_is_pure_and_restores_the_stream(self, world):
        ns_ip = sorted(world.directory.nameserver_ips())[0]
        before = world._rng_transport
        transport = replay_transport(world, seed=1)
        first = transport(ns_ip, "a.nl", None, 1000)
        second = transport(ns_ip, "a.nl", None, 1000)
        assert (first.rtt_ms, first.rcode) == (second.rtt_ms, second.rcode)
        assert world._rng_transport is before


class TestTelemetry:
    def test_metrics_exposed_under_reactive_namespace(self, world, triggers):
        telemetry = RunTelemetry.create()
        service = make_service(world, telemetry=telemetry)
        report = service.run(triggers)
        counters = telemetry.registry.snapshot()["counters"]
        gauges = telemetry.registry.snapshot()["gauges"]
        histograms = telemetry.registry.snapshot()["histograms"]
        assert counters["repro.reactive.triggers"] == len(triggers)
        assert counters["repro.reactive.admitted"] == report.counts["done"]
        assert counters["repro.reactive.probes"] == report.counts["probes"]
        assert gauges["repro.reactive.campaigns{state=done}"] == \
            report.counts["done"]
        assert gauges["repro.reactive.campaigns{state=shed}"] == \
            report.counts["shed"]
        latency = histograms["repro.reactive.trigger_latency_s"]
        assert latency["count"] == report.counts["done"]

    def test_telemetry_does_not_perturb_results(self, world, triggers):
        plain = make_service(world).run(triggers)
        metered = make_service(
            world, telemetry=RunTelemetry.create()).run(triggers)
        assert metered.summary() == plain.summary()

    def test_per_campaign_probe_gauges_are_exact(self, world, triggers):
        telemetry = RunTelemetry.create()
        report = make_service(world, telemetry=telemetry).run(triggers)
        gauges = telemetry.registry.snapshot()["gauges"]
        for campaign in report.campaigns:
            if campaign.state != CampaignState.DONE:
                continue
            key = f"repro.reactive.campaign_probes{{campaign={campaign.key}}}"
            assert gauges[key] == campaign.n_probes


class TestMetricDedupeUnderChaos:
    """The checkpoint-buffered live metrics: a faulted run's end-state
    equals a clean one's, not just its summary (the historical
    double-count regression)."""

    # The only series allowed to differ: they count the chaos itself.
    CHAOS_ONLY = ("repro.reactive.worker_kills", "repro.reactive.restores")

    def reactive_series(self, telemetry):
        snap = telemetry.registry.snapshot()
        return {
            kind: {name: value for name, value in snap[kind].items()
                   if name.startswith("repro.reactive.")
                   and not name.startswith(self.CHAOS_ONLY)}
            for kind in ("counters", "gauges", "histograms")
        }

    @pytest.mark.parametrize("chaos_seed", [1, 5])
    def test_faulted_metrics_equal_clean_metrics(self, world, triggers,
                                                 chaos_seed):
        clean_tel = RunTelemetry.create()
        clean = make_service(world, telemetry=clean_tel).run(triggers)
        chaos_tel = RunTelemetry.create()
        injector = FaultInjector(
            ChaosConfig.reactive_preset("heavy", seed=chaos_seed))
        chaotic = make_service(world, telemetry=chaos_tel).run(
            triggers, injector=injector)
        assert chaotic.counts["kills"] > 0, "chaos never fired"
        # Replayed ticks re-run admission, probing and latency
        # observations; without checkpoint dedupe every one of these
        # series over-counts in the faulted run.
        assert self.reactive_series(chaos_tel) == \
            self.reactive_series(clean_tel)

    def test_kill_counters_stay_live(self, world, triggers):
        """The kill/restore counters must NOT be deduped: they record
        the chaos, not the replayed work."""
        telemetry = RunTelemetry.create()
        injector = FaultInjector(
            ChaosConfig.reactive_preset("heavy", seed=1))
        report = make_service(world, telemetry=telemetry).run(
            triggers, injector=injector)
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["repro.reactive.worker_kills"] == \
            report.counts["kills"]
        assert counters["repro.reactive.restores"] == \
            report.counts["restores"]


class TestReactiveJournal:
    def run_with_journal(self, world, triggers, tmp_path, injector=None):
        from repro.obs import RunJournal, read_journal

        telemetry = RunTelemetry.create()
        path = tmp_path / "reactive.jsonl"
        telemetry.attach_journal(RunJournal(
            path, run_id=telemetry.run_id, clock=telemetry.clock,
            started_at_utc=telemetry.started_at_utc))
        make_service(world, telemetry=telemetry).run(
            triggers, injector=injector)
        telemetry.journal.close()
        return read_journal(path)

    def test_admission_decisions_are_journaled(self, world, triggers,
                                               tmp_path):
        records = self.run_with_journal(world, triggers, tmp_path)
        admits = [r for r in records if r["type"] == "reactive.admit"]
        assert admits
        for r in admits:
            assert {"campaign", "allocation", "full", "latency_s",
                    "late", "throttled"} <= set(r)
            assert r["incarnation"] == 0  # no chaos: one worker

    def test_kill_restore_checkpoint_records(self, world, triggers,
                                             tmp_path):
        injector = FaultInjector(
            ChaosConfig.reactive_preset("heavy", seed=1))
        records = self.run_with_journal(world, triggers, tmp_path,
                                        injector=injector)
        kills = [r for r in records if r["type"] == "worker.kill"]
        restores = [r for r in records if r["type"] == "worker.restore"]
        checkpoints = [r for r in records
                       if r["type"] == "worker.checkpoint"]
        assert kills and len(kills) == len(restores)
        assert kills[0]["tick_ts"] is not None
        # Incarnations advance one per restore.
        assert [r["incarnation"] for r in restores] == \
            list(range(1, len(restores) + 1))
        assert checkpoints
        incarnations = {r["incarnation"] for r in checkpoints}
        assert len(incarnations) > 1  # replayed workers journal too
