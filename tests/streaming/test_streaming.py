"""Tests for topics, consumers, scheduler, and stream jobs."""

import pytest

from repro.streaming.processors import (
    FilterProcessor,
    FlatMapProcessor,
    MapProcessor,
    StreamJob,
)
from repro.streaming.scheduler import EventScheduler
from repro.streaming.topic import Broker, Consumer, Topic


class TestTopic:
    def test_produce_and_read(self):
        topic = Topic("t")
        topic.produce(100, "a")
        topic.produce(200, "b")
        records = topic.read(0)
        assert [(r.offset, r.ts, r.value) for r in records] == \
            [(0, 100, "a"), (1, 200, "b")]

    def test_rejects_out_of_order_timestamps(self):
        topic = Topic("t")
        topic.produce(100, "a")
        with pytest.raises(ValueError):
            topic.produce(50, "b")

    def test_equal_timestamps_allowed(self):
        topic = Topic("t")
        topic.produce(100, "a")
        topic.produce(100, "b")
        assert len(topic) == 2

    def test_read_with_limit(self):
        topic = Topic("t")
        for i in range(5):
            topic.produce(i, i)
        assert len(topic.read(1, max_records=2)) == 2

    def test_read_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            Topic("t").read(-1)


class TestConsumer:
    def test_poll_advances(self):
        topic = Topic("t")
        topic.produce(1, "a")
        consumer = Consumer(topic)
        assert [r.value for r in consumer.poll()] == ["a"]
        assert consumer.poll() == []
        topic.produce(2, "b")
        assert [r.value for r in consumer.poll()] == ["b"]

    def test_from_end(self):
        topic = Topic("t")
        topic.produce(1, "a")
        consumer = Consumer(topic, from_beginning=False)
        assert consumer.poll() == []

    def test_lag(self):
        topic = Topic("t")
        topic.produce(1, "a")
        topic.produce(2, "b")
        consumer = Consumer(topic)
        assert consumer.lag == 2
        consumer.poll(max_records=1)
        assert consumer.lag == 1

    def test_seek(self):
        topic = Topic("t")
        topic.produce(1, "a")
        consumer = Consumer(topic)
        consumer.poll()
        consumer.seek(0)
        assert [r.value for r in consumer.poll()] == ["a"]

    def test_seek_bounds(self):
        topic = Topic("t")
        with pytest.raises(ValueError):
            Consumer(topic).seek(5)


class TestBroker:
    def test_topic_get_or_create(self):
        broker = Broker()
        assert broker.topic("x") is broker.topic("x")
        assert "x" in broker
        assert broker.topics() == ["x"]


class TestEventScheduler:
    def test_fires_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.at(200, lambda ts: fired.append(("b", ts)))
        scheduler.at(100, lambda ts: fired.append(("a", ts)))
        scheduler.run_until(300)
        assert fired == [("a", 100), ("b", 200)]

    def test_ties_break_by_scheduling_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.at(100, lambda ts: fired.append("first"))
        scheduler.at(100, lambda ts: fired.append("second"))
        scheduler.run_until(101)
        assert fired == ["first", "second"]

    def test_run_until_exclusive(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.at(100, lambda ts: fired.append(ts))
        scheduler.run_until(100)
        assert fired == []
        scheduler.run_until(101)
        assert fired == [100]

    def test_cancel(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.at(100, lambda ts: fired.append(ts))
        event.cancel()
        scheduler.run_until(200)
        assert fired == []
        assert scheduler.pending == 0

    def test_rejects_past(self):
        scheduler = EventScheduler(start_ts=100)
        with pytest.raises(ValueError):
            scheduler.at(50, lambda ts: None)

    def test_after(self):
        scheduler = EventScheduler(start_ts=100)
        fired = []
        scheduler.after(50, lambda ts: fired.append(ts))
        scheduler.run_until(200)
        assert fired == [150]

    def test_every(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.every(0, 100, 350, lambda ts: fired.append(ts))
        scheduler.run_until(1000)
        assert fired == [0, 100, 200, 300]

    def test_events_can_schedule_events(self):
        scheduler = EventScheduler()
        fired = []

        def chain(ts):
            fired.append(ts)
            if ts < 300:
                scheduler.at(ts + 100, chain)

        scheduler.at(100, chain)
        scheduler.run_until(1000)
        assert fired == [100, 200, 300]

    def test_run_all(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.at(100, lambda ts: fired.append(ts))
        scheduler.at(5000, lambda ts: fired.append(ts))
        scheduler.run_all()
        assert fired == [100, 5000]

    def test_clock_advances(self):
        scheduler = EventScheduler()
        scheduler.at(100, lambda ts: None)
        scheduler.run_until(500)
        assert scheduler.now == 500


class TestStreamJob:
    def test_map(self):
        broker = Broker()
        broker.topic("in").produce(1, 10)
        job = StreamJob(broker, "in", "out", [MapProcessor(lambda x: x * 2)])
        job.drain()
        assert [r.value for r in broker.topic("out")] == [20]

    def test_filter(self):
        broker = Broker()
        for i in range(5):
            broker.topic("in").produce(i, i)
        job = StreamJob(broker, "in", "out",
                        [FilterProcessor(lambda x: x % 2 == 0)])
        job.drain()
        assert [r.value for r in broker.topic("out")] == [0, 2, 4]

    def test_flatmap(self):
        broker = Broker()
        broker.topic("in").produce(1, 3)
        job = StreamJob(broker, "in", "out",
                        [FlatMapProcessor(lambda x: range(x))])
        job.drain()
        assert [r.value for r in broker.topic("out")] == [0, 1, 2]

    def test_chained_processors(self):
        broker = Broker()
        for i in range(4):
            broker.topic("in").produce(i, i)
        job = StreamJob(broker, "in", "out", [
            FilterProcessor(lambda x: x > 0),
            MapProcessor(lambda x: x * 10),
        ])
        job.drain()
        assert [r.value for r in broker.topic("out")] == [10, 20, 30]

    def test_incremental_step(self):
        broker = Broker()
        job = StreamJob(broker, "in", "out", [MapProcessor(lambda x: x)])
        broker.topic("in").produce(1, "a")
        assert job.step() == 1
        assert job.step() == 0
        broker.topic("in").produce(2, "b")
        assert job.step() == 1
        assert job.n_in == 2 and job.n_out == 2

    def test_timestamps_preserved(self):
        broker = Broker()
        broker.topic("in").produce(123, "x")
        StreamJob(broker, "in", "out", [MapProcessor(lambda v: v)]).drain()
        assert broker.topic("out").read(0)[0].ts == 123
