"""Tests for the hardened StreamJob: retries, DLQ, breaker, checkpoints."""

import pytest

from repro.streaming import (
    Broker,
    CircuitBreaker,
    DeadLetter,
    FailFastProcessor,
    FlaggedRecord,
    MapProcessor,
    PoisonRecord,
    Record,
    RetryPolicy,
    StreamJob,
)
from repro.streaming.processors import Processor


class FlakyProcessor(Processor):
    """Fails each value a scripted number of times before succeeding."""

    def __init__(self, failures_by_value):
        self.failures_by_value = dict(failures_by_value)
        self.attempts = {}

    def process(self, record: Record):
        value = record.value
        seen = self.attempts.get(value, 0)
        self.attempts[value] = seen + 1
        if seen < self.failures_by_value.get(value, 0):
            raise RuntimeError(f"transient failure on {value!r}")
        yield value


def feed(broker, values, topic="in"):
    t = broker.topic(topic)
    for i, value in enumerate(values):
        t.produce(i, value)


class TestRetries:
    def test_transient_failures_retried_to_success(self):
        broker = Broker()
        feed(broker, ["a", "b", "c"])
        flaky = FlakyProcessor({"b": 2})
        job = StreamJob(broker, "in", "out", [flaky], name="j",
                        retry_policy=RetryPolicy(max_retries=3))
        job.drain()
        assert [r.value for r in broker.topic("out")] == ["a", "b", "c"]
        assert job.retries_used == 2
        assert job.n_dead == 0
        assert job.backoff_ms_total > 0

    def test_exhausted_retries_dead_letter(self):
        broker = Broker()
        feed(broker, ["a", "bad", "c"])
        flaky = FlakyProcessor({"bad": 99})
        job = StreamJob(broker, "in", "out", [flaky], name="j",
                        retry_policy=RetryPolicy(max_retries=2))
        job.drain()
        assert [r.value for r in broker.topic("out")] == ["a", "c"]
        letters = [r.value for r in broker.topic("j.dlq")]
        assert len(letters) == 1
        letter = letters[0]
        assert isinstance(letter, DeadLetter)
        assert letter.value == "bad"
        assert letter.job == "j"
        assert letter.error == "RuntimeError"
        assert "bad" in letter.reason
        assert letter.attempts == 3  # initial try + 2 retries

    def test_retry_budget_caps_total_retries(self):
        broker = Broker()
        feed(broker, ["x", "y", "z"])
        flaky = FlakyProcessor({"x": 9, "y": 9, "z": 9})
        job = StreamJob(broker, "in", "out", [flaky], name="j",
                        retry_policy=RetryPolicy(max_retries=5, retry_budget=4))
        job.drain()
        assert job.retries_used == 4
        assert job.n_dead == 3

    def test_no_partial_emission_on_retry(self):
        # A chain that emits from its first stage but fails in its
        # second must not leak first-stage outputs for failed attempts.
        broker = Broker()
        feed(broker, ["a"])
        flaky = FlakyProcessor({"A": 2})
        job = StreamJob(broker, "in", "out",
                        [MapProcessor(str.upper), flaky], name="j",
                        retry_policy=RetryPolicy(max_retries=3))
        job.drain()
        assert [r.value for r in broker.topic("out")] == ["A"]

    def test_backoff_deterministic_and_capped(self):
        policy = RetryPolicy(base_backoff_ms=100, multiplier=2,
                             max_backoff_ms=350, jitter=0.1)
        a = policy.backoff_ms("job", 7, 1)
        b = policy.backoff_ms("job", 7, 1)
        assert a == b
        assert policy.backoff_ms("job", 7, 0) != policy.backoff_ms("job", 8, 0)
        # attempt 5 raw = 100 * 32 -> capped at 350, jitter within ±10%.
        assert 315.0 <= policy.backoff_ms("job", 0, 5) <= 385.0

    def test_unhardened_job_still_raises(self):
        broker = Broker()
        feed(broker, ["boom"])
        job = StreamJob(broker, "in", "out", [FlakyProcessor({"boom": 9})])
        with pytest.raises(RuntimeError):
            job.drain()


class TestPoisonRouting:
    def test_type_mismatch_goes_to_dlq_without_retries(self):
        broker = Broker()
        feed(broker, [1, "two", 3])
        job = StreamJob(broker, "in", "out",
                        [FailFastProcessor(int, name="ints")], name="j",
                        retry_policy=RetryPolicy(max_retries=5),
                        dead_letter="j.dlq")
        job.drain()
        assert [r.value for r in broker.topic("out")] == [1, 3]
        (letter,) = [r.value for r in broker.topic("j.dlq")]
        assert letter.error == "PoisonRecord"
        assert "expected int, got str" in letter.reason
        assert letter.attempts == 1
        assert job.retries_used == 0

    def test_check_function_rejection_reason_preserved(self):
        broker = Broker()
        feed(broker, [5, -1])
        gate = FailFastProcessor(
            int, check=lambda v: "negative" if v < 0 else None, name="pos")
        job = StreamJob(broker, "in", "out", [gate], name="j",
                        dead_letter="j.dlq")
        job.drain()
        (letter,) = [r.value for r in broker.topic("j.dlq")]
        assert letter.reason == "pos: negative"

    def test_poison_does_not_trip_breaker(self):
        broker = Broker()
        feed(broker, ["s"] * 10)
        breaker = CircuitBreaker(failure_threshold=2)
        job = StreamJob(broker, "in", "out",
                        [FailFastProcessor(int)], name="j",
                        circuit_breaker=breaker)
        job.drain()
        assert breaker.state == CircuitBreaker.CLOSED
        assert job.n_dead == 10
        assert job.n_flagged == 0


class TestCircuitBreaker:
    def _failing_job(self, broker, n_records, threshold=3, recovery=4,
                     fail=lambda v: True):
        feed(broker, list(range(n_records)))

        class Failer(Processor):
            def process(self, record):
                if fail(record.value):
                    raise RuntimeError("down")
                yield record.value

        breaker = CircuitBreaker(failure_threshold=threshold,
                                 recovery_records=recovery)
        job = StreamJob(broker, "in", "out", [Failer()], name="j",
                        circuit_breaker=breaker)
        return job, breaker

    def test_opens_after_threshold_and_flags(self):
        broker = Broker()
        job, breaker = self._failing_job(broker, 10, threshold=3, recovery=100)
        job.drain()
        # 3 failures open the breaker; the remaining 7 pass through.
        assert breaker.state == CircuitBreaker.OPEN
        assert job.n_dead == 3
        assert job.n_flagged == 7
        flagged = [r.value for r in broker.topic("out")]
        assert all(isinstance(v, FlaggedRecord) for v in flagged)
        assert all(v.reason == "circuit_open" for v in flagged)
        assert [v.value for v in flagged] == list(range(3, 10))

    def test_half_open_recovery_closes_breaker(self):
        broker = Broker()
        # Fail the first 3 records, then recover.
        job, breaker = self._failing_job(
            broker, 12, threshold=3, recovery=4, fail=lambda v: v < 3)
        job.drain()
        # records 0-2 fail -> open; 3-6 flagged pass-throughs; record 7
        # is the half-open trial, succeeds, breaker closes; 8-11 normal.
        assert breaker.state == CircuitBreaker.CLOSED
        assert job.n_flagged == 4
        processed = [r.value for r in broker.topic("out")
                     if not isinstance(r.value, FlaggedRecord)]
        assert processed == [7, 8, 9, 10, 11]

    def test_half_open_failure_reopens(self):
        broker = Broker()
        job, breaker = self._failing_job(broker, 10, threshold=2, recovery=3)
        job.drain()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.n_opens >= 2  # re-opened after failed trial


class TestTopicTruncate:
    def test_truncate_drops_tail(self):
        broker = Broker()
        feed(broker, ["a", "b", "c", "d"])
        topic = broker.topic("in")
        assert topic.truncate(2) == 2
        assert [r.value for r in topic] == ["a", "b"]
        assert topic.end_offset == 2

    def test_truncate_validates_range(self):
        topic = Broker().topic("t")
        topic.produce(0, "x")
        with pytest.raises(ValueError):
            topic.truncate(5)
        with pytest.raises(ValueError):
            topic.truncate(-1)

    def test_produce_append_after_truncate(self):
        topic = Broker().topic("t")
        for i in range(3):
            topic.produce(i, i)
        topic.truncate(1)
        record = topic.produce(9, "new")
        assert record.offset == 1


class TestCheckpointRestore:
    def _make_job(self, broker, name="j"):
        flaky = FlakyProcessor({"bad": 99, "flaky": 1})
        return StreamJob(
            broker, "in", "out", [flaky], name=name,
            retry_policy=RetryPolicy(max_retries=2),
            dead_letter=f"{name}.dlq",
            circuit_breaker=CircuitBreaker(failure_threshold=5))

    VALUES = ["a", "flaky", "bad", "b", "c", "d", "bad", "e", "f"]

    def test_restore_matches_uninterrupted_run(self):
        # Reference: one uninterrupted run.
        ref = Broker()
        feed(ref, self.VALUES)
        self._make_job(ref).drain()
        expected_sink = [(r.ts, r.value) for r in ref.topic("out")]
        expected_dlq = [(r.value.value, r.value.error)
                        for r in ref.topic("j.dlq")]

        # Crash run: process 4 records, checkpoint, process 3 more that
        # are never committed, then "crash" and restore a fresh job.
        broker = Broker()
        feed(broker, self.VALUES)
        job = self._make_job(broker)
        job.step(max_records=4)
        state = job.checkpoint()
        job.step(max_records=3)  # uncommitted work, lost in the crash
        assert broker.topic("out").end_offset > state["sink_end"]

        recovered = self._make_job(broker)
        recovered.restore(state)
        recovered.drain()

        assert [(r.ts, r.value) for r in broker.topic("out")] == expected_sink
        assert [(r.value.value, r.value.error)
                for r in broker.topic("j.dlq")] == expected_dlq
        assert recovered.n_in == len(self.VALUES)

    def test_checkpoint_counters_round_trip(self):
        broker = Broker()
        feed(broker, self.VALUES)
        job = self._make_job(broker)
        job.drain()
        state = job.checkpoint()
        fresh = self._make_job(broker)
        fresh.restore(state)
        for attr in ("n_in", "n_out", "n_dead", "n_flagged",
                     "retries_used", "backoff_ms_total"):
            assert getattr(fresh, attr) == getattr(job, attr)
        assert fresh.circuit_breaker.state_dict() == \
            job.circuit_breaker.state_dict()

    def test_restore_rejects_wrong_job(self):
        broker = Broker()
        feed(broker, ["a"])
        job = self._make_job(broker)
        state = job.checkpoint()
        other = self._make_job(broker, name="other")
        with pytest.raises(ValueError):
            other.restore(state)

    def test_restore_rejects_unknown_version(self):
        broker = Broker()
        feed(broker, ["a"])
        job = self._make_job(broker)
        state = job.checkpoint()
        state["version"] = 99
        with pytest.raises(ValueError):
            self._make_job(broker).restore(state)
