"""Bounded topics, backpressure policies, and broker group commits."""

import pytest

from repro.obs import MetricsRegistry
from repro.streaming import (
    BACKPRESSURE_POLICIES,
    Broker,
    Consumer,
    EventScheduler,
    Topic,
    TopicFull,
)


def _fill(topic, n, start_ts=0):
    for i in range(n):
        topic.produce(start_ts + i, f"v{i}")


class TestBoundedTopic:
    def test_unbounded_by_default(self):
        topic = Topic("t")
        _fill(topic, 1000)
        assert len(topic) == 1000

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Topic("t", capacity=0)
        with pytest.raises(ValueError):
            Topic("t", capacity=5, backpressure="nope")

    def test_policies_tuple(self):
        assert BACKPRESSURE_POLICIES == ("block", "shed_oldest", "reject")

    def test_reject_raises_topic_full(self):
        topic = Topic("t", capacity=2, backpressure="reject")
        _fill(topic, 2)
        with pytest.raises(TopicFull) as err:
            topic.produce(2, "overflow")
        assert err.value.topic == "t"
        assert err.value.capacity == 2
        assert err.value.policy == "reject"
        # nothing was appended
        assert len(topic) == 2

    def test_shed_oldest_evicts_head_and_counts(self):
        topic = Topic("t", capacity=3, backpressure="shed_oldest")
        _fill(topic, 5)
        assert len(topic) == 3
        assert topic.n_shed == 2
        assert topic.start_offset == 2
        assert topic.end_offset == 5
        # remaining records keep their absolute offsets
        assert [r.offset for r in topic.read(0)] == [2, 3, 4]

    def test_shed_gap_attributed_to_consumer(self):
        topic = Topic("t", capacity=3, backpressure="shed_oldest")
        consumer = Consumer(topic)
        _fill(topic, 5)
        records = consumer.poll()
        assert consumer.missed == 2
        assert [r.value for r in records] == ["v2", "v3", "v4"]

    def test_block_without_hook_raises(self):
        topic = Topic("t", capacity=2, backpressure="block")
        _fill(topic, 2)
        with pytest.raises(TopicFull):
            topic.produce(2, "overflow")

    def test_block_drain_hook_frees_space(self):
        topic = Topic("t", capacity=2, backpressure="block")
        consumer = Consumer(topic)

        def drain():
            records = consumer.poll(max_records=1)
            if not records:
                return False
            topic.trim(consumer.offset)
            return True

        topic.on_full(drain)
        _fill(topic, 10)
        # every record was either retained or consumed-then-trimmed
        assert consumer.missed == 0
        assert topic.n_shed == 0
        assert topic.end_offset == 10

    def test_block_hook_without_progress_raises(self):
        topic = Topic("t", capacity=2, backpressure="block")
        topic.on_full(lambda: False)
        _fill(topic, 2)
        with pytest.raises(TopicFull):
            topic.produce(2, "overflow")

    def test_backpressure_metrics(self):
        registry = MetricsRegistry()
        topic = Topic("t", metrics=registry, capacity=2,
                      backpressure="shed_oldest")
        _fill(topic, 5)
        shed = registry.counter("repro.stream.topic.shed", topic="t")
        assert shed.value == 3


class TestTrim:
    def test_trim_releases_head(self):
        topic = Topic("t")
        _fill(topic, 5)
        assert topic.trim(3) == 3
        assert topic.start_offset == 3
        assert len(topic) == 2
        assert topic.n_trimmed == 3
        # offsets unchanged for the survivors
        assert [r.offset for r in topic.read(0)] == [3, 4]

    def test_trim_is_idempotent_at_same_offset(self):
        topic = Topic("t")
        _fill(topic, 5)
        topic.trim(3)
        assert topic.trim(3) == 0

    def test_trim_bounds(self):
        topic = Topic("t")
        _fill(topic, 5)
        topic.trim(2)
        with pytest.raises(ValueError):
            topic.trim(1)  # below the current base
        with pytest.raises(ValueError):
            topic.trim(6)  # past the end

    def test_read_clamps_below_start(self):
        topic = Topic("t")
        _fill(topic, 5)
        topic.trim(3)
        assert [r.offset for r in topic.read(0)] == [3, 4]

    def test_trim_frees_capacity(self):
        topic = Topic("t", capacity=3, backpressure="reject")
        _fill(topic, 3)
        topic.trim(2)
        topic.produce(3, "fits")
        assert topic.end_offset == 4


class TestBrokerCommits:
    def test_commit_and_committed(self):
        broker = Broker()
        topic = broker.topic("t")
        _fill(topic, 5)
        assert broker.committed("t", "g") is None
        broker.commit("t", "g", 3)
        assert broker.committed("t", "g") == 3

    def test_consumer_commit_via_broker(self):
        broker = Broker()
        _fill(broker.topic("t"), 5)
        consumer = broker.consumer("t", group="g")
        consumer.poll(max_records=2)
        assert consumer.commit() == 2
        assert broker.committed("t", "g") == 2

    def test_commit_requires_broker(self):
        consumer = Consumer(Topic("t"))
        with pytest.raises(RuntimeError):
            consumer.commit()

    def test_from_committed_resumes_without_the_old_consumer(self):
        broker = Broker()
        _fill(broker.topic("t"), 5)
        first = broker.consumer("t", group="g")
        first.poll(max_records=3)
        first.commit()
        del first  # the consumer object does not survive the "kill"
        fresh = broker.consumer("t", group="g", from_committed=True)
        assert [r.value for r in fresh.poll()] == ["v3", "v4"]

    def test_from_committed_falls_back_to_beginning(self):
        broker = Broker()
        _fill(broker.topic("t"), 3)
        fresh = broker.consumer("t", group="never-committed",
                                from_committed=True)
        assert len(fresh.poll()) == 3

    def test_from_committed_clamps_to_trimmed_start(self):
        broker = Broker()
        topic = broker.topic("t")
        _fill(topic, 5)
        broker.commit("t", "g", 1)
        topic.trim(3)
        fresh = broker.consumer("t", group="g", from_committed=True)
        assert fresh.offset == 3

    def test_commit_bounds(self):
        broker = Broker()
        _fill(broker.topic("t"), 3)
        with pytest.raises(ValueError):
            broker.commit("t", "g", 4)

    def test_groups_are_independent(self):
        broker = Broker()
        _fill(broker.topic("t"), 5)
        broker.commit("t", "a", 2)
        broker.commit("t", "b", 4)
        assert broker.committed("t", "a") == 2
        assert broker.committed("t", "b") == 4


class TestBrokerBoundedTopics:
    def test_capacity_applies_at_creation(self):
        broker = Broker()
        topic = broker.topic("t", capacity=4, backpressure="reject")
        assert topic.capacity == 4
        assert topic.backpressure == "reject"

    def test_mismatched_rerequest_is_an_error(self):
        broker = Broker()
        broker.topic("t", capacity=4)
        with pytest.raises(ValueError):
            broker.topic("t", capacity=8)
        with pytest.raises(ValueError):
            broker.topic("t", backpressure="reject")

    def test_omitted_params_return_existing(self):
        broker = Broker()
        bounded = broker.topic("t", capacity=4, backpressure="shed_oldest")
        assert broker.topic("t") is bounded


class TestPollUntilTs:
    def test_until_ts_is_exclusive(self):
        topic = Topic("t")
        for ts in (0, 100, 200, 300):
            topic.produce(ts, ts)
        consumer = Consumer(topic)
        assert [r.ts for r in consumer.poll(until_ts=200)] == [0, 100]
        # the bound does not consume the stopping record
        assert [r.ts for r in consumer.poll(until_ts=1000)] == [200, 300]

    def test_until_ts_with_max_records(self):
        topic = Topic("t")
        for ts in (0, 1, 2, 3):
            topic.produce(ts, ts)
        consumer = Consumer(topic)
        assert len(consumer.poll(max_records=3, until_ts=2)) == 2


class TestSchedulerFiredAccounting:
    """Regression: ``run_all`` must not double- (or zero-) count."""

    def test_n_fired_counted_exactly_once_via_run_all(self):
        scheduler = EventScheduler()
        fired = []
        for ts in (5, 1, 3):
            scheduler.at(ts, fired.append)
        assert scheduler.run_all() == 3
        assert scheduler.n_fired == 3
        assert fired == [1, 3, 5]

    def test_n_fired_accumulates_across_mixed_driving(self):
        scheduler = EventScheduler()
        for ts in (1, 2, 3, 4):
            scheduler.at(ts, lambda ts: None)
        scheduler.run_until(3)   # fires 1, 2
        assert scheduler.n_fired == 2
        scheduler.run_all()      # fires 3, 4
        assert scheduler.n_fired == 4

    def test_ties_fire_in_scheduling_order_under_run_all(self):
        scheduler = EventScheduler()
        order = []
        scheduler.at(7, lambda ts: order.append("a"))
        scheduler.at(7, lambda ts: order.append("b"))
        scheduler.at(7, lambda ts: order.append("c"))
        scheduler.run_all()
        assert order == ["a", "b", "c"]
        assert scheduler.n_fired == 3
