"""Tests for the §9/§4.3 extensions: multi-vantage probing, end-user
caching impact, and the telescope visibility oracle."""

import random

import pytest

from repro.core.enduser import (
    CacheScenario,
    analytic_failure_share,
    caching_grid,
    simulate_enduser_impact,
)
from repro.core.vantage import (
    REGION_RTT_OFFSET_MS,
    MultiVantageProber,
    VantagePoint,
    masking_analysis,
)
from repro.core.visibility import analyze_visibility, match_attacks
from repro.util.timeutil import HOUR, Window, parse_ts


class TestVantagePoint:
    def test_rejects_unknown_region(self, tiny_world):
        with pytest.raises(ValueError):
            VantagePoint(tiny_world, "atlantis")

    def test_unicast_load_identical_across_vantages(self, tiny_world):
        transip = tiny_world.providers["TransIP"]
        ns = transip.nameservers[0]
        ts = parse_ts("2021-03-01 20:00")
        home = VantagePoint(tiny_world, "eu-west")
        far = VantagePoint(tiny_world, "ap-east")
        assert home.load_at(ns, ts).server_util == \
            far.load_at(ns, ts).server_util

    def test_far_vantage_sees_higher_rtt(self, tiny_world):
        euskaltel = tiny_world.providers["Euskaltel"]
        ns = euskaltel.nameservers[0]
        quiet = parse_ts("2021-03-25 12:00")
        home = VantagePoint(tiny_world, "eu-west")
        far = VantagePoint(tiny_world, "us-east")
        home_rtts = [home.transport(ns.ip, "x.com", None, quiet).rtt_ms
                     for _ in range(30)]
        far_rtts = [far.transport(ns.ip, "x.com", None, quiet).rtt_ms
                    for _ in range(30)]
        gap = (sum(far_rtts) - sum(home_rtts)) / 30
        assert gap == pytest.approx(REGION_RTT_OFFSET_MS["us-east"], abs=3)

    def test_anycast_routed_to_regional_site(self, tiny_world):
        # The March 18 mega-peak campaign hits Google's anycast fleet.
        google = tiny_world.providers["Google"]
        ns = google.nameservers[0]
        ts = parse_ts("2021-03-18 10:10")
        assert tiny_world.load_at(ns, ts).server_util > 0
        loads = {region: VantagePoint(tiny_world, region).load_at(ns, ts)
                 for region in ("eu-west", "us-east", "ap-east")}
        utils = {r: l.server_util for r, l in loads.items()}
        # Different catchments absorb different attack shares.
        assert len({round(u, 9) for u in utils.values()}) > 1


class TestMultiVantageProber:
    def test_probe_shapes(self, tiny_world):
        prober = MultiVantageProber(tiny_world,
                                    regions=("eu-west", "us-east"))
        ns_ip = tiny_world.providers["TransIP"].nameservers[0].ip
        result = prober.probe(ns_ip, parse_ts("2021-03-25 12:00"),
                              n_probes=10)
        assert len(result.observations) == 2
        for obs in result.observations:
            assert obs.n_probes == 10
            assert 0.0 <= obs.answered_share <= 1.0

    def test_quiet_server_no_disagreement(self, tiny_world):
        prober = MultiVantageProber(tiny_world)
        ns_ip = tiny_world.providers["Euskaltel"].nameservers[0].ip
        result = prober.probe(ns_ip, parse_ts("2021-03-25 12:00"))
        assert result.max_disagreement == 0.0
        assert result.masked_from == []

    def test_rejects_empty_regions(self, tiny_world):
        with pytest.raises(ValueError):
            MultiVantageProber(tiny_world, regions=())

    def test_rejects_bad_probe_count(self, tiny_world):
        prober = MultiVantageProber(tiny_world)
        with pytest.raises(ValueError):
            prober.probe(1, 0, n_probes=0)

    def test_masking_analysis_runs(self, tiny_study):
        results = masking_analysis(tiny_study.world, tiny_study.feed,
                                   max_attacks=10, n_probes=10)
        assert 0 < len(results) <= 10
        for result in results:
            assert len(result.observations) == 3


class TestEndUserCaching:
    ATTACK = Window(0, 2 * HOUR)

    def test_high_ttl_popular_domain_protected(self):
        # §6.3.1: popular + high TTL -> the cache usually carries users
        # through a 2h attack (the entry expires mid-attack only when
        # its uniform phase lands inside the window: ~8% of the time).
        scenario = CacheScenario(queries_per_hour=100.0, ttl_s=86400)
        impacts = [simulate_enduser_impact(random.Random(seed), scenario,
                                           self.ATTACK, failure_p=1.0)
                   for seed in range(20)]
        mean_share = sum(i.failure_share for i in impacts) / len(impacts)
        assert mean_share < 0.25
        unaffected = sum(1 for i in impacts if i.failure_share == 0.0)
        assert unaffected >= 12

    def test_low_ttl_fails_quickly(self):
        rng = random.Random(2)
        scenario = CacheScenario(queries_per_hour=100.0, ttl_s=60)
        impact = simulate_enduser_impact(rng, scenario, self.ATTACK,
                                         failure_p=1.0)
        assert impact.failure_share > 0.8
        assert impact.first_failure_after_s < 10 * 60

    def test_partial_loss_mostly_tolerated(self):
        # Moura et al. 2018: caching tolerates ~50% loss well.
        rng = random.Random(3)
        scenario = CacheScenario(queries_per_hour=60.0, ttl_s=3600)
        impact = simulate_enduser_impact(rng, scenario, self.ATTACK,
                                         failure_p=0.5)
        assert impact.failure_share < 0.10

    def test_unpopular_domain_suffers_more(self):
        popular = simulate_enduser_impact(
            random.Random(4), CacheScenario(600.0, 300), self.ATTACK, 0.9)
        rare = simulate_enduser_impact(
            random.Random(4), CacheScenario(2.0, 300), self.ATTACK, 0.9)
        assert rare.failure_share >= popular.failure_share

    def test_analytic_matches_simulation(self):
        scenario = CacheScenario(queries_per_hour=120.0, ttl_s=600)
        window = Window(0, 24 * HOUR)
        sims = [simulate_enduser_impact(random.Random(s), scenario, window,
                                        failure_p=0.5)
                for s in range(8)]
        measured = sum(i.n_failed for i in sims) / max(
            1, sum(i.n_queries for i in sims))
        predicted = analytic_failure_share(scenario, window.duration, 0.5)
        assert measured == pytest.approx(predicted, abs=0.02)

    def test_grid_monotone_in_ttl(self):
        # Average over several grid seeds: higher TTLs protect more.
        totals = {60: 0.0, 3600: 0.0, 86400: 0.0}
        for seed in range(10):
            grid = caching_grid(seed, self.ATTACK, failure_p=1.0,
                                popularities=(100.0,),
                                ttls=(60, 3600, 86400))
            for scenario, impact in grid:
                totals[scenario.ttl_s] += impact.failure_share
        assert totals[60] > totals[3600] > totals[86400]

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            CacheScenario(queries_per_hour=0.0, ttl_s=60)
        with pytest.raises(ValueError):
            CacheScenario(queries_per_hour=1.0, ttl_s=-1)
        with pytest.raises(ValueError):
            simulate_enduser_impact(random.Random(1),
                                    CacheScenario(1.0, 60),
                                    self.ATTACK, failure_p=1.5)


class TestVisibilityOracle:
    def test_matches_pair_overlapping(self, tiny_study):
        matches = match_attacks(tiny_study.world.attacks, tiny_study.feed)
        assert len(matches) == len(tiny_study.world.attacks)
        detected = [m for m in matches if m.detected]
        assert detected
        for match in detected[:20]:
            assert match.inferred.victim_ip == match.truth.victim_ip

    def test_invisible_attacks_never_detected(self, tiny_study):
        report = analyze_visibility(tiny_study.world.attacks,
                                    tiny_study.feed)
        # Interval-matching collisions (an invisible attack overlapping
        # a visible one on the same victim) can produce rare spurious
        # matches; genuine detection is impossible.
        assert report.class_rate("invisible (reflected/unspoofed)") <= 0.1

    def test_visible_attacks_mostly_detected(self, tiny_study):
        report = analyze_visibility(tiny_study.world.attacks,
                                    tiny_study.feed)
        assert report.class_rate("randomly spoofed (visible)") > 0.85

    def test_multivector_underestimated(self, tiny_study):
        report = analyze_visibility(tiny_study.world.attacks,
                                    tiny_study.feed)
        if report.multivector_underestimate is None:
            pytest.skip("no multi-vector attacks detected in tiny world")
        # The telescope misses the invisible vector: inferred < true.
        assert report.multivector_underestimate < 0.9
        # Pure spoofed attacks are estimated roughly correctly.
        assert report.pure_spoofed_estimate == pytest.approx(1.0, abs=0.35)

    def test_detection_rate_below_one(self, tiny_study):
        report = analyze_visibility(tiny_study.world.attacks,
                                    tiny_study.feed)
        assert 0.5 < report.detection_rate < 1.0
