"""Tests for report rendering internals and the Study visibility view."""

import pytest

from repro.core import report as report_module
from repro.core.visibility import VisibilityReport


class TestReportSections:
    def test_header_counts(self, tiny_study):
        text = report_module._header(tiny_study)
        assert "window" in text
        assert str(len(tiny_study.world.directory)) in text.replace(",", "")

    def test_monthly_table_rows(self, tiny_study):
        text = report_module._monthly_table(tiny_study)
        # One row per month plus header machinery.
        assert "2021-03" in text
        assert "total:" in text

    def test_ports_section_mentions_paper_values(self, tiny_study):
        text = report_module._ports_section(tiny_study)
        assert "80.7%" in text    # the paper anchors are printed inline
        assert "90.4" in text

    def test_failure_section(self, tiny_study):
        text = report_module._failure_section(tiny_study)
        assert "92/8%" in text

    def test_impact_section_has_table6(self, tiny_study):
        text = report_module._impact_section(tiny_study)
        assert "Most affected companies" in text

    def test_resilience_section_strata(self, tiny_study):
        text = report_module._resilience_section(tiny_study)
        assert "unicast" in text
        assert "/24" in text

    def test_visibility_section(self, tiny_study):
        text = report_module._visibility_section(tiny_study)
        assert "randomly spoofed" in text

    def test_full_report_idempotent(self, tiny_study):
        assert tiny_study.report() == tiny_study.report()


class TestStudyVisibility:
    def test_cached(self, tiny_study):
        assert tiny_study.visibility is tiny_study.visibility

    def test_is_visibility_report(self, tiny_study):
        assert isinstance(tiny_study.visibility, VisibilityReport)

    def test_counts_ground_truth(self, tiny_study):
        assert tiny_study.visibility.n_truth == len(tiny_study.world.attacks)

    def test_detected_subset(self, tiny_study):
        report = tiny_study.visibility
        assert report.n_detected <= report.n_truth
        per_class_total = sum(t for _, t in report.by_class.values())
        assert per_class_total == report.n_truth
