"""Tests for Equation 1 and the impact series machinery."""

import pytest

from repro.core.metrics import (
    ImpactSeries,
    compute_baseline,
    impact_on_rtt,
    impact_series,
)
from repro.dns.rcode import ResponseStatus
from repro.openintel.storage import MeasurementStore
from repro.util.timeutil import DAY, FIVE_MINUTES, Window


class TestImpactOnRtt:
    def test_equation_one(self):
        assert impact_on_rtt(200.0, 20.0) == 10.0

    def test_none_propagates(self):
        assert impact_on_rtt(None, 20.0) is None
        assert impact_on_rtt(200.0, None) is None

    def test_zero_baseline(self):
        assert impact_on_rtt(200.0, 0.0) is None


def _store_with_attack_day():
    """Day 0: quiet baseline at 20 ms. Day 1: an attack window where RTT
    rises to 200 ms in one bucket with some timeouts."""
    store = MeasurementStore()
    for i in range(20):
        store.add_fast(1, 1000 + i, ResponseStatus.OK, 20.0, False)
    attack_ts = DAY + 6 * FIVE_MINUTES
    for i in range(8):
        store.add_fast(1, attack_ts + i, ResponseStatus.OK, 200.0, True)
    for i in range(2):
        store.add_fast(1, attack_ts + 10 + i, ResponseStatus.TIMEOUT,
                       15000.0, True)
    # A later healthy bucket.
    for i in range(5):
        store.add_fast(1, attack_ts + 2 * FIVE_MINUTES + i,
                       ResponseStatus.OK, 22.0, True)
    return store, attack_ts


class TestComputeBaseline:
    def test_day_baseline(self):
        store, attack_ts = _store_with_attack_day()
        assert compute_baseline(store, 1, attack_ts, "day") == 20.0

    def test_missing_baseline(self):
        store, _ = _store_with_attack_day()
        assert compute_baseline(store, 1, 10 * DAY, "day") is None

    def test_week_baseline_averages_days(self):
        store = MeasurementStore()
        store.add_fast(1, 100, ResponseStatus.OK, 10.0, False)          # day 0
        store.add_fast(1, DAY + 100, ResponseStatus.OK, 30.0, False)    # day 1
        assert compute_baseline(store, 1, 2 * DAY + 5, "week") == 20.0

    def test_unknown_kind(self):
        store, _ = _store_with_attack_day()
        with pytest.raises(ValueError):
            compute_baseline(store, 1, DAY, "fortnight")


class TestImpactSeries:
    def _series(self):
        store, attack_ts = _store_with_attack_day()
        window = Window(attack_ts, attack_ts + 3 * FIVE_MINUTES)
        return impact_series(store, 1, window)

    def test_baseline_from_day_before(self):
        series = self._series()
        assert series.baseline_rtt == 20.0

    def test_points_per_bucket(self):
        series = self._series()
        assert len(series.points) == 2  # attack bucket + recovery bucket

    def test_max_impact(self):
        series = self._series()
        assert series.max_impact == pytest.approx(10.0)

    def test_mean_impact_below_max(self):
        series = self._series()
        assert series.mean_impact < series.max_impact

    def test_counts(self):
        series = self._series()
        assert series.n_measured == 15
        assert series.n_failed == 2
        assert series.n_timeouts == 2
        assert series.n_servfails == 0
        assert series.failure_rate == pytest.approx(2 / 15)

    def test_max_failure_rate(self):
        series = self._series()
        assert series.max_failure_rate() == pytest.approx(0.2)

    def test_no_baseline_means_no_impact(self):
        store = MeasurementStore()
        store.add_fast(1, 100, ResponseStatus.OK, 20.0, True)
        series = impact_series(store, 1, Window(0, FIVE_MINUTES))
        assert series.baseline_rtt is None
        assert series.max_impact is None
        assert series.n_measured == 1

    def test_empty_window(self):
        store, _ = _store_with_attack_day()
        series = impact_series(store, 1, Window(5 * DAY, 5 * DAY + 100))
        assert series.points == []
        assert series.failure_rate == 0.0
