"""Tests for the reactive measurement platform (§4.3.1)."""

import pytest

from repro.core.reactive import (
    ReactivePlatform,
    ReactiveProbe,
    ReactiveStore,
    measurement_store_from_reactive,
    reactive_impact_series,
)
from repro.util.timeutil import DAY, FIVE_MINUTES, HOUR, MINUTE, Window, parse_ts


class TestReactiveStore:
    def _store(self):
        store = ReactiveStore()
        # Bucket 0: one answered, one dead. Bucket 300: all dead.
        store.add(ReactiveProbe(10, 1, 100, True, 20.0))
        store.add(ReactiveProbe(20, 1, 101, False, None))
        store.add(ReactiveProbe(310, 1, 100, False, None))
        store.add(ReactiveProbe(320, 1, 101, False, None))
        store.add(ReactiveProbe(610, 1, 100, True, 25.0))
        return store

    def test_availability_series(self):
        series = self._store().availability_series(1)
        assert [(ts, share) for ts, share, _ in series] == \
            [(0, 0.5), (300, 0.0), (600, 1.0)]

    def test_unresponsive_share(self):
        store = self._store()
        assert store.unresponsive_share(1, Window(0, 900)) == pytest.approx(1 / 3)

    def test_first_responsive_after(self):
        store = self._store()
        assert store.first_responsive_after(1, 100) == 600
        assert store.first_responsive_after(1, 700) is None

    def test_unknown_domain(self):
        store = ReactiveStore()
        assert store.availability_series(42) == []
        assert store.unresponsive_share(42, Window(0, 100)) == 0.0

    def test_availability_series_with_no_probes(self):
        assert ReactiveStore().availability_series(1) == []

    def test_first_responsive_after_past_the_last_probe(self):
        store = self._store()
        # strictly after the final (answered) probe at ts=610
        assert store.first_responsive_after(1, 611) is None
        assert store.first_responsive_after(1, 10 ** 9) is None

    def test_first_responsive_after_with_no_probes(self):
        assert ReactiveStore().first_responsive_after(1, 0) is None

    def test_unresponsive_share_over_zero_probe_window(self):
        store = self._store()
        # the window [900, 1200) contains no probes at all
        assert store.unresponsive_share(1, Window(900, 1200)) == 0.0


class TestReactivePlatform:
    @pytest.fixture(scope="class")
    def platform_run(self, tiny_world, tiny_study):
        platform = ReactivePlatform(tiny_world)
        window = Window(parse_ts("2021-03-01 18:00"), parse_ts("2021-03-02 04:00"))
        store = platform.run(tiny_study.feed, window=window)
        return platform, store

    def test_campaigns_triggered(self, platform_run):
        platform, _ = platform_run
        assert platform.campaigns
        # The TransIP March campaign attacks three nameservers.
        transip_victims = {c.victim_ip for c in platform.campaigns}
        assert len(transip_victims) >= 3

    def test_trigger_delay_at_most_ten_minutes(self, platform_run):
        platform, _ = platform_run
        for campaign in platform.campaigns:
            assert campaign.triggered_at - campaign.attack.start <= 10 * MINUTE

    def test_probes_cover_attack_and_tail(self, platform_run):
        platform, store = platform_run
        campaign = platform.campaigns[0]
        ts_values = [p.ts for p in store.probes]
        assert min(ts_values) >= campaign.triggered_at
        assert max(ts_values) >= campaign.attack.end + DAY - 2 * FIVE_MINUTES

    def test_probe_rate_bounded(self, platform_run):
        # Ethics bound: at most 50 probes per 5-minute window per
        # campaign domain set (one domain may be probed by several
        # campaigns, so count per campaign's victim).
        platform, store = platform_run
        per_bucket = {}
        for probe in store.probes:
            key = (probe.domain_id, probe.ts // FIVE_MINUTES)
            per_bucket[key] = per_bucket.get(key, 0) + 1
        # Each domain probed at most once per window per campaign x its
        # nameserver count (3 for TransIP) x campaigns covering it (3).
        assert max(per_bucket.values()) <= 50

    def test_probes_spread_within_window(self, platform_run):
        platform, store = platform_run
        offsets = {p.ts % FIVE_MINUTES for p in store.probes}
        assert len(offsets) > 1  # not all at the window boundary

    def test_probes_hit_every_nameserver(self, platform_run, tiny_world):
        platform, store = platform_run
        domain_id = store.probes[0].domain_id
        record = tiny_world.directory[domain_id]
        probed_ns = {p.ns_ip for p in store.domain_probes(domain_id)}
        assert probed_ns == set(record.delegation.nameserver_ips)

    def test_failures_observed_during_attack(self, platform_run):
        # The March TransIP attack leaves many probes unanswered.
        _, store = platform_run
        during = [p for p in store.probes
                  if parse_ts("2021-03-01 20:00") <= p.ts
                  <= parse_ts("2021-03-02 00:00")]
        assert during
        failed = sum(1 for p in during if not p.answered)
        assert failed / len(during) > 0.3

    def test_recovery_after_attack(self, platform_run):
        _, store = platform_run
        after = [p for p in store.probes
                 if p.ts >= parse_ts("2021-03-02 06:00")]
        assert after
        answered = sum(1 for p in after if p.answered)
        assert answered / len(after) > 0.9

    def test_max_campaigns_bound(self, tiny_world, tiny_study):
        platform = ReactivePlatform(tiny_world)
        platform.run(tiny_study.feed,
                     window=Window(tiny_world.timeline.start,
                                   tiny_world.timeline.end),
                     max_campaigns=2)
        assert len(platform.campaigns) <= 2

    def test_empty_window_no_probes(self, tiny_world, tiny_study):
        platform = ReactivePlatform(tiny_world)
        store = platform.run(tiny_study.feed,
                             window=Window(0, 100))
        assert len(store) == 0

    def test_probe_domain_direct(self, tiny_world):
        platform = ReactivePlatform(tiny_world)
        record = tiny_world.directory.get_by_name("mil.ru")
        probes = platform.probe_domain(record.domain_id,
                                       tiny_world.timeline.start)
        assert len(probes) == 3  # every nameserver probed

    def test_validation(self, tiny_world):
        with pytest.raises(ValueError):
            ReactivePlatform(tiny_world, probes_per_window=0)
        with pytest.raises(ValueError):
            ReactivePlatform(tiny_world, trigger_delay_s=-1)


class TestReactiveImpactAdapter:
    """Reactive probes feeding the §5/§6 RTT-impact machinery."""

    @pytest.fixture(scope="class")
    def platform_run(self, tiny_world, tiny_study):
        platform = ReactivePlatform(tiny_world, post_attack_s=2 * HOUR)
        window = Window(tiny_world.timeline.start, tiny_world.timeline.end)
        store = platform.run(tiny_study.feed, window=window)
        return platform, store

    def test_store_adapter_counts_and_statuses(self, platform_run,
                                               tiny_world):
        _, store = platform_run
        mstore = measurement_store_from_reactive(store,
                                                 tiny_world.directory)
        assert mstore.n_measurements == len(store)
        assert mstore.n_rejected == 0
        answered = sum(1 for p in store.probes if p.answered)
        total_ok = sum(a.ok_n for a in mstore.daily.values())
        total_timeout = sum(a.timeout_n for a in mstore.daily.values())
        assert total_ok == answered
        assert total_timeout == len(store) - answered
        # Probe rows are dense: the 5-minute buckets carry them too.
        assert sum(a.n for a in mstore.buckets.values()) == len(store)

    def test_store_adapter_maps_domains_to_nssets(self, platform_run,
                                                  tiny_world):
        _, store = platform_run
        mstore = measurement_store_from_reactive(store,
                                                 tiny_world.directory)
        probed_nssets = {tiny_world.directory[p.domain_id].nsset_id
                         for p in store.probes}
        stored_nssets = {nsset_id for nsset_id, _ in mstore.buckets}
        assert stored_nssets == probed_nssets

    def test_impact_series_from_reactive_probes(self, platform_run,
                                                tiny_world, tiny_study):
        platform, store = platform_run
        from repro.core.metrics import compute_baseline_degraded
        all_series = []
        for campaign in platform.campaigns:
            nsset_id = tiny_world.directory[campaign.domain_ids[0]].nsset_id
            window = Window(campaign.attack.start, campaign.attack.end)
            series = reactive_impact_series(
                store, tiny_world.directory, nsset_id, window,
                baseline_store=tiny_study.store)
            # The baseline comes from the crawl store, not the probes.
            expected, _ = compute_baseline_degraded(
                tiny_study.store, nsset_id, window.start, "day")
            assert series.baseline_rtt == expected
            all_series.append(series)
        # Baselined campaigns produce computed impacts: reactive data
        # flowing through the §5 machinery unchanged.
        assert any(p.impact is not None
                   for s in all_series if s.baseline_rtt is not None
                   for p in s.points)
        # Heavy attacks drop probes, and the series sees the timeouts
        # that OpenINTEL's once-daily crawl undercounts.
        assert any(p.timeouts > 0 for s in all_series for p in s.points)

    def test_impact_series_empty_outside_probed_window(self, platform_run,
                                                       tiny_world,
                                                       tiny_study):
        _, store = platform_run
        nsset_id = tiny_world.directory[store.probes[0].domain_id].nsset_id
        series = reactive_impact_series(
            store, tiny_world.directory, nsset_id,
            Window(parse_ts("2021-01-01"), parse_ts("2021-01-02")),
            baseline_store=tiny_study.store)
        assert series.points == []
