"""Tests for the §6 analyses over the small 3-month study."""

import pytest

from repro.core.correlation import (
    analyze_correlation,
    attack_duration_modes,
    attack_intensity_modes,
    duration_impact_buckets,
)
from repro.core.impact import analyze_failures, analyze_impact, top_companies_by_impact
from repro.core.longitudinal import (
    affected_domains_by_month,
    dataset_totals,
    monthly_summary,
)
from repro.core.ports import analyze_ports, analyze_successful_ports
from repro.core.resilience import analyze_resilience, complete_failure_prefix_shares
from repro.core.topasn import top_attacked_asns, top_attacked_ips
from repro.net.ip import parse_ip
from repro.net.ports import PORT_DNS, PORT_HTTP, PROTO_ICMP, PROTO_TCP, PROTO_UDP


class TestMonthlySummary:
    def test_covers_study_months(self, small_study):
        summary = small_study.monthly
        keys = [row.key for row in summary.rows]
        assert keys == [(2021, 1), (2021, 2), (2021, 3)]

    def test_totals_consistent(self, small_study):
        summary = small_study.monthly
        assert summary.total_attacks == len(small_study.feed.attacks)
        assert summary.total_dns_attacks == len(small_study.join.dns_attacks)

    def test_dns_share_in_paper_ballpark(self, small_study):
        # Paper Table 3: monthly DNS share 0.57%..2.12%.
        lo, hi = small_study.monthly.dns_share_range()
        assert 0.003 < lo
        assert hi < 0.05

    def test_ip_counts(self, small_study):
        summary = small_study.monthly
        assert summary.unique_dns_ips() <= summary.unique_ips()
        for row in summary.rows:
            assert row.total_ips <= row.total_attacks

    def test_dataset_totals(self, small_study):
        totals = dataset_totals(small_study.feed.attacks)
        assert totals["attacks"] == len(small_study.feed.attacks)
        assert totals["slash24s"] <= totals["ips"]


class TestAffectedDomains:
    def test_monthly_affected(self, small_study):
        rows = affected_domains_by_month(small_study.join,
                                         small_study.world.directory)
        assert rows
        for (key, unique, peak) in rows:
            assert peak <= unique or unique == 0
            assert key[0] == 2021

    def test_mega_peaks_present(self, small_study):
        # The scripted mega-provider campaigns create months where a
        # single attack touches a large slice of the namespace.
        rows = affected_domains_by_month(small_study.join,
                                         small_study.world.directory)
        n_domains = len(small_study.world.directory)
        assert max(peak for _, _, peak in rows) > n_domains * 0.05


class TestPortAnalysis:
    def test_shares_sum_to_one(self, small_study):
        ports = small_study.ports
        total_share = sum(ports.proto_share(p)
                          for p in (PROTO_TCP, PROTO_UDP, PROTO_ICMP))
        assert total_share == pytest.approx(1.0)

    def test_single_port_dominates(self, small_study):
        # Paper: 80.7% single port.
        assert 0.6 < small_study.ports.single_port_share < 0.95

    def test_tcp_dominates(self, small_study):
        assert small_study.ports.proto_share(PROTO_TCP) > 0.6

    def test_top_ports(self, small_study):
        rows = small_study.ports.top_ports(proto=PROTO_TCP, n=3)
        assert rows
        names = [r[1] for r in rows]
        assert "HTTP" in names or "DNS" in names

    def test_successful_ports_skew_to_dns(self, small_study):
        ok = small_study.successful_ports
        if ok.n_attacks == 0:
            pytest.skip("no successful attacks in the small study")
        # Paper §6.3.1: successful attacks target port 53 more often.
        assert ok.port_share(PORT_DNS) >= small_study.ports.port_share(PORT_DNS)

    def test_successful_counts_attack_once(self, small_study):
        ok = analyze_successful_ports(small_study.events)
        failing_attacks = {(e.attack.victim_ip, e.attack.start)
                           for e in small_study.events if e.has_failures}
        assert ok.n_attacks == len(failing_attacks)


class TestFailureAnalysis:
    def test_counts_consistent(self, small_study):
        analysis = small_study.failures
        assert analysis.n_events == len(small_study.events)
        assert analysis.n_failing_events == len(analysis.scatter)
        assert analysis.n_failed_queries >= analysis.n_failing_events

    def test_failure_split_parts_sum(self, small_study):
        analysis = small_study.failures
        assert (analysis.n_timeout_queries + analysis.n_servfail_queries
                <= analysis.n_failed_queries)

    def test_timeouts_dominate(self, small_study):
        analysis = small_study.failures
        if analysis.n_failed_queries == 0:
            pytest.skip("no failures")
        # Paper: 92% timeout vs 8% servfail.
        assert analysis.timeout_share_of_failures > 0.5

    def test_failing_mostly_unicast(self, small_study):
        analysis = small_study.failures
        if analysis.n_failing_events == 0:
            pytest.skip("no failing events")
        # Paper: 99% of failing domains on unicast. The 3-month small
        # study is dominated by the scripted TransIP campaign, whose
        # partner NSSets carry a "partial" census label, so the share is
        # diluted here; the full-scale benchmark checks the strong form.
        assert analysis.unicast_share_of_failing >= 0.4


class TestImpactAnalysis:
    def test_grid_counts(self, small_study):
        impact = small_study.impact
        assert sum(impact.grid.values()) == impact.n_with_impact

    def test_thresholds_nested(self, small_study):
        impact = small_study.impact
        assert impact.over_100x <= impact.over_10x <= impact.n_with_impact

    def test_top_companies_sorted(self, small_study):
        ranking = small_study.top_companies(10)
        impacts = [impact for _, impact in ranking]
        assert impacts == sorted(impacts, reverse=True)

    def test_scripted_campaigns_top_small_study(self, small_study):
        # Jan-Mar 2021 contains the TransIP March campaign and the
        # NForce Table-6 attack; one of those scripted incidents must
        # dominate the company ranking with a >50x impact.
        ranking = small_study.top_companies(3)
        assert ranking[0][0] in ("TransIP", "NForce B.V.")
        assert ranking[0][1] > 50
        assert "TransIP" in [name for name, _ in ranking]


class TestCorrelationAnalysis:
    def test_pearson_low(self, small_study):
        # The paper's key negative result: intensity does not predict
        # impact.
        corr = small_study.correlation
        assert abs(corr.intensity_pearson) < 0.75

    def test_summary_renders(self, small_study):
        assert "r(intensity" in small_study.correlation.summary()

    def test_duration_buckets_cover_events(self, small_study):
        rows = duration_impact_buckets(small_study.events)
        assert sum(n for _, n, _ in rows) == len(small_study.events)
        assert all(high <= n for _, n, high in rows)

    def test_attack_modes_bimodal(self, small_study):
        attacks = [c.attack for c in small_study.join.dns_direct_attacks]
        duration_modes = attack_duration_modes(attacks)
        assert duration_modes
        # Paper: modes at ~15 min and ~1 h; generator noise allowed.
        assert 5 * 60 < duration_modes[0] < 3 * 3600

    def test_intensity_modes(self, small_study):
        attacks = [c.attack for c in small_study.join.dns_direct_attacks]
        modes = attack_intensity_modes(attacks)
        assert modes
        assert all(m > 0 for m in modes)


class TestResilienceAnalysis:
    def test_strata_cover_events(self, small_study):
        res = small_study.resilience
        total = sum(g.n_events for g in res.by_anycast.values())
        assert total == len(small_study.events)
        assert sum(g.n_events for g in res.by_asn_count.values()) == total
        assert sum(g.n_events for g in res.by_prefix_count.values()) == total

    def test_anycast_never_catastrophic(self, small_study):
        # Paper Figure 11: no anycast NSSet saw a 100-fold increase.
        assert small_study.resilience.anycast_over_100x() == 0

    def test_unicast_worse_than_anycast(self, small_study):
        res = small_study.resilience
        unicast = res.by_anycast.get("unicast")
        anycast = res.by_anycast.get("anycast")
        if not unicast or not anycast or not unicast.impacts:
            pytest.skip("missing stratum")
        assert (unicast.max_impact or 0) > (anycast.max_impact or 0)

    def test_complete_failure_shares_sum(self, small_study):
        shares = complete_failure_prefix_shares(small_study.events)
        if shares:
            assert sum(shares.values()) == pytest.approx(1.0)


class TestTopTargets:
    def test_top_asns_sorted(self, small_study):
        ranked = top_attacked_asns(small_study.join, small_study.metadata)
        counts = [r.n_attacks for r in ranked]
        assert counts == sorted(counts, reverse=True)

    def test_google_among_top(self, small_study):
        # 8.8.8.8/8.8.4.4 hot targets put Google on top (Table 4).
        ranked = top_attacked_asns(small_study.join, small_study.metadata, 5)
        assert "Google" in [r.company for r in ranked]

    def test_top_ips_flag_open_resolvers(self, small_study):
        ranked = top_attacked_ips(small_study.join, small_study.metadata,
                                  small_study.open_resolvers, 10)
        google_dns = [r for r in ranked if r.ip == parse_ip("8.8.4.4")]
        if google_dns:
            assert google_dns[0].is_open_resolver

    def test_filtered_removes_open_resolvers(self, small_study):
        filtered = top_attacked_ips(small_study.join, small_study.metadata,
                                    small_study.open_resolvers, 10,
                                    filtered=True)
        assert all(not r.is_open_resolver for r in filtered)

    def test_ip_text(self, small_study):
        ranked = top_attacked_ips(small_study.join, small_study.metadata,
                                  small_study.open_resolvers, 1)
        assert ranked[0].ip_text.count(".") == 3
