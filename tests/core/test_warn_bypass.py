"""The deduplicated bypass-warning helper.

The pipeline's former inline ``import warnings`` + ``warnings.warn``
blocks are one module-level helper now; the warning *category* and the
exact pre-refactor *messages* must be unchanged (tools filter on them).
"""

import warnings

import pytest

from repro import ChaosConfig, WorldConfig, build_world, run_study
from repro.core.pipeline import (
    CHAOS_CACHE_REASON,
    PREBUILT_WORLD_REASON,
    SERIAL_CRAWL_REASON,
    _warn_bypass,
)

# The messages exactly as the pre-refactor pipeline emitted them.
EXPECTED = {
    "chaos-cache": "chaos runs bypass the artifact cache: injected faults "
                   "must never be cached nor replayed from it",
    "prebuilt-world": "a pre-built world cannot be fingerprinted (its build "
                      "flags are unknown); pass a config instead of a world "
                      "to use the artifact cache",
    "serial-crawl": "chaos runs force a serial crawl: the fault injector "
                    "is stateful (burst state, fault log, RNG streams), "
                    "so its schedule cannot be sharded across forked "
                    "workers",
}


class TestHelper:
    def test_category_is_runtime_warning(self):
        with pytest.warns(RuntimeWarning, match="^exactly this$"):
            _warn_bypass("exactly this")

    def test_messages_unchanged(self):
        assert CHAOS_CACHE_REASON == EXPECTED["chaos-cache"]
        assert PREBUILT_WORLD_REASON == EXPECTED["prebuilt-world"]
        assert SERIAL_CRAWL_REASON == EXPECTED["serial-crawl"]


class TestPipelineEmission:
    """Each bypass path emits its exact message, as RuntimeWarning."""

    def _messages(self, recorded):
        return [(w.category, str(w.message)) for w in recorded]

    def test_chaos_run_with_cache(self, tmp_path):
        with pytest.warns(RuntimeWarning) as recorded:
            run_study(WorldConfig.tiny(), cache=str(tmp_path / "c"),
                      chaos=ChaosConfig(seed=1))
        assert (RuntimeWarning, EXPECTED["chaos-cache"]) in \
            self._messages(recorded)

    def test_prebuilt_world_with_cache(self, tmp_path):
        world = build_world(WorldConfig.tiny(seed=11))
        with pytest.warns(RuntimeWarning) as recorded:
            run_study(world=world, cache=str(tmp_path / "c"))
        assert (RuntimeWarning, EXPECTED["prebuilt-world"]) in \
            self._messages(recorded)

    def test_chaos_run_with_workers(self):
        with pytest.warns(RuntimeWarning) as recorded:
            run_study(WorldConfig.tiny(), chaos=ChaosConfig(seed=1),
                      n_workers=2)
        assert (RuntimeWarning, EXPECTED["serial-crawl"]) in \
            self._messages(recorded)

    def test_clean_run_warns_nothing(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_study(WorldConfig.tiny())
