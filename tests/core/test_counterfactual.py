"""Tests for the layered-defense counterfactual machinery."""

import pytest

from repro.core.counterfactual import (
    DEFAULT_LAYERS,
    AttackDelta,
    DefenseReport,
    MitigationLayer,
    NEUTRALIZED_IMPACT,
    _impact_of,
    evaluate_defenses,
)


class TestMitigationLayer:
    def test_validation(self):
        with pytest.raises(ValueError):
            MitigationLayer("")
        with pytest.raises(ValueError):
            MitigationLayer("x", filter_efficiency=1.5)
        with pytest.raises(ValueError):
            MitigationLayer("x", capacity_factor=0.0)
        with pytest.raises(ValueError):
            MitigationLayer("x", anycast_sites=-1)

    def test_effective_capacity_composes_surge_and_scaleout(self):
        layer = MitigationLayer("both", capacity_factor=3.0,
                                anycast_sites=6)
        assert layer.effective_capacity_factor == 21.0
        assert MitigationLayer("plain").effective_capacity_factor == 1.0

    def test_default_stack_ends_with_the_layered_combo(self):
        names = [layer.name for layer in DEFAULT_LAYERS]
        assert names == ["filtering", "capacity-surge",
                         "anycast-scaleout", "layered"]
        layered = DEFAULT_LAYERS[-1]
        assert layered.filter_efficiency > 0
        assert layered.capacity_factor > 1
        assert layered.anycast_sites > 0


class TestImpactMath:
    @pytest.fixture(scope="class")
    def victim(self, tiny_world):
        for attack in tiny_world.attacks:
            ns = tiny_world.nameservers_by_ip.get(attack.victim_ip)
            if ns is None or ns.is_misconfig_target or ns.anycast:
                continue
            if _impact_of(tiny_world, ns, attack, None) > 2.0:
                return ns, attack
        pytest.skip("tiny world produced no harmful unicast attack")

    def test_every_layer_reduces_impact(self, tiny_world, victim):
        ns, attack = victim
        baseline = _impact_of(tiny_world, ns, attack, None)
        for layer in DEFAULT_LAYERS:
            assert _impact_of(tiny_world, ns, attack, layer) <= baseline

    def test_layered_combo_dominates_single_levers(self, tiny_world,
                                                   victim):
        ns, attack = victim
        impacts = {layer.name: _impact_of(tiny_world, ns, attack, layer)
                   for layer in DEFAULT_LAYERS}
        assert impacts["layered"] <= min(
            impacts["filtering"], impacts["capacity-surge"],
            impacts["anycast-scaleout"])

    def test_impact_floor_is_one(self, tiny_world, victim):
        ns, attack = victim
        total = MitigationLayer("absorb", filter_efficiency=1.0)
        assert _impact_of(tiny_world, ns, attack, total) == 1.0


class TestEvaluateDefenses:
    @pytest.fixture(scope="class")
    def report(self, tiny_world):
        return evaluate_defenses(tiny_world)

    def test_covers_unicast_nameserver_attacks_only(self, tiny_world,
                                                    report):
        assert report.n_attacks > 0
        for row in report.rows:
            ns = tiny_world.nameservers_by_ip[row.victim_ip]
            assert ns.anycast is None
            assert not ns.is_misconfig_target
            assert set(row.impacts) == {l.name for l in report.layers}

    def test_events_filter_restricts_rows(self, tiny_world, tiny_study):
        full = evaluate_defenses(tiny_world)
        filtered = evaluate_defenses(tiny_world, events=tiny_study.events)
        assert filtered.n_attacks <= full.n_attacks
        victims = {e.attack.victim_ip for e in tiny_study.events}
        for row in filtered.rows:
            assert row.victim_ip in victims

    def test_report_statistics(self, report):
        harmful = report.harmful_rows()
        for row in harmful:
            assert row.baseline_impact > NEUTRALIZED_IMPACT
        if not harmful:
            pytest.skip("no harmful attacks in the tiny world")
        assert report.mean_impact() >= report.mean_impact("layered")
        assert report.mean_delta("layered") >= \
            report.mean_delta("filtering") - 1e-9
        assert 0.0 <= report.neutralized_share("layered") <= 1.0
        assert report.best_layer() in {l.name for l in report.layers}

    def test_empty_report_degrades_gracefully(self):
        report = DefenseReport(layers=DEFAULT_LAYERS, rows=[])
        assert report.mean_impact() == 1.0
        assert report.mean_delta("layered") == 0.0
        assert report.neutralized_share("layered") == 0.0

    def test_attack_delta_accessors(self):
        row = AttackDelta(attack_id=1, victim_ip=2, provider="p",
                          baseline_impact=50.0,
                          impacts={"layered": 1.0, "filtering": 20.0})
        assert row.delta("layered") == 49.0
        assert row.neutralized("layered")
        assert not row.neutralized("filtering")
