"""Tests for the dataset join, NSSet metadata, and event extraction."""

import pytest

from repro.core.events import extract_events, failing_events, high_impact_events
from repro.core.join import AttackClass, join_datasets
from repro.core.nsset import NSSetMetadata
from repro.net.ip import parse_ip, slash24_of
from repro.util.timeutil import parse_ts


@pytest.fixture(scope="module")
def metadata(tiny_study):
    return tiny_study.metadata


class TestJoin:
    def test_classification_partition(self, tiny_study):
        join = tiny_study.join
        assert len(join) == len(tiny_study.feed.attacks)
        total = sum(len(join.by_class(k)) for k in AttackClass)
        assert total == len(join)

    def test_direct_attacks_have_domains(self, tiny_study):
        for classified in tiny_study.join.dns_direct_attacks:
            assert classified.affected_domains > 0
            assert classified.nsset_ids

    def test_direct_victims_are_nameservers(self, tiny_study):
        ns_ips = tiny_study.world.directory.nameserver_ips()
        for classified in tiny_study.join.dns_direct_attacks:
            assert classified.victim_ip in ns_ips

    def test_open_resolver_classification(self, tiny_study):
        for classified in tiny_study.join.classified:
            if classified.victim_ip == parse_ip("8.8.8.8"):
                assert classified.klass is AttackClass.DNS_OPEN_RESOLVER

    def test_other_victims_not_nameservers(self, tiny_study):
        ns_ips = tiny_study.world.directory.nameserver_ips()
        for classified in tiny_study.join.by_class(AttackClass.OTHER):
            assert classified.victim_ip not in ns_ips

    def test_same_s24_classification(self, tiny_study):
        ns_s24s = {slash24_of(ip)
                   for ip in tiny_study.world.directory.nameserver_ips()}
        for classified in tiny_study.join.by_class(AttackClass.DNS_SAME_S24):
            assert slash24_of(classified.victim_ip) in ns_s24s

    def test_join_without_openresolver_scan(self, tiny_study):
        join = join_datasets(tiny_study.feed.attacks,
                             tiny_study.world.directory, None)
        # Without the scan, resolver IPs count as direct.
        assert not join.by_class(AttackClass.DNS_OPEN_RESOLVER)

    def test_dns_attacks_includes_open_resolvers(self, tiny_study):
        join = tiny_study.join
        dns = join.dns_attacks
        assert len(dns) >= len(join.dns_direct_attacks)


class TestNSSetMetadata:
    def test_info_structure(self, tiny_study, metadata):
        record = next(d for d in tiny_study.world.directory.domains
                      if d.provider_name == "TransIP" and not d.misconfig
                      and d.secondary_provider is None)
        info = metadata.info(record.nsset_id, tiny_study.world.timeline.start)
        assert info.n_slash24 == 3       # paper: three subnets
        assert info.n_asns == 1          # one ASN
        assert info.anycast_label == "unicast"
        assert info.company == "TransIP"
        assert info.single_asn and not info.single_prefix

    def test_anycast_label(self, tiny_study, metadata):
        record = next(d for d in tiny_study.world.directory.domains
                      if d.provider_name == "Cloudflare" and not d.misconfig
                      and d.secondary_provider is None)
        info = metadata.info(record.nsset_id, tiny_study.world.timeline.start)
        assert info.anycast_label in ("anycast", "partial")  # census recall

    def test_milru_single_prefix_single_asn(self, tiny_study, metadata):
        record = tiny_study.world.directory.get_by_name("mil.ru")
        info = metadata.info(record.nsset_id, tiny_study.world.timeline.start)
        assert info.single_prefix
        assert info.single_asn
        assert info.is_unicast

    def test_info_cached(self, tiny_study, metadata):
        record = tiny_study.world.directory.domains[0]
        ts = tiny_study.world.timeline.start
        assert metadata.info(record.nsset_id, ts) is \
            metadata.info(record.nsset_id, ts + 60)

    def test_company_of_ip(self, tiny_study, metadata):
        assert metadata.company_of_ip(parse_ip("8.8.8.8")) == "Google"
        assert metadata.company_of_ip(parse_ip("192.168.12.34")) == "Private IP"

    def test_n_domains_counts_members(self, tiny_study, metadata):
        record = next(d for d in tiny_study.world.directory.domains
                      if not d.misconfig)
        info = metadata.info(record.nsset_id, tiny_study.world.timeline.start)
        assert info.n_domains == len(
            tiny_study.world.directory.domains_of_nsset(record.nsset_id))


class TestEvents:
    def test_min_domains_threshold(self, tiny_study):
        for event in tiny_study.events:
            assert event.n_measured >= tiny_study.config.event_min_domains

    def test_higher_threshold_fewer_events(self, tiny_study):
        stricter = extract_events(tiny_study.join, tiny_study.store,
                                  tiny_study.metadata, min_domains=50)
        assert len(stricter) <= len(tiny_study.events)

    def test_events_only_direct(self, tiny_study):
        direct_ips = {c.victim_ip for c in tiny_study.join.dns_direct_attacks}
        for event in tiny_study.events:
            assert event.attack.victim_ip in direct_ips

    def test_transip_march_event_present(self, tiny_study):
        transip = [e for e in tiny_study.events if e.company == "TransIP"]
        assert transip
        big = max(transip, key=lambda e: e.n_measured)
        # Paper Figure 3: ~20% timeouts during the March attack.
        assert 0.05 < big.failure_rate < 0.45
        # Paper Figure 2: a massive RTT impairment.
        assert big.max_impact is None or big.max_impact > 5

    def test_failing_events_subset(self, tiny_study):
        failing = failing_events(tiny_study.events)
        assert all(e.has_failures for e in failing)
        assert len(failing) <= len(tiny_study.events)

    def test_high_impact_subset(self, tiny_study):
        high = high_impact_events(tiny_study.events, threshold=10.0)
        for event in high:
            assert event.max_impact >= 10.0

    def test_event_accessors(self, tiny_study):
        event = tiny_study.events[0]
        assert event.duration_s == event.attack.duration_s
        assert event.intensity_ppm == event.attack.max_ppm
        assert event.nsset_id == event.info.nsset_id
        assert "AttackEvent" in repr(event)
