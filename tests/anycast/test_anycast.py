"""Tests for anycast deployments and the quarterly census."""

import io
import random

import pytest
from hypothesis import given, strategies as st

from repro.anycast.census import CENSUS_DATES, AnycastCensus, CensusSnapshot
from repro.anycast.deployment import AnycastDeployment, AnycastSite, CatchmentModel
from repro.net.ip import parse_ip, slash24_of
from repro.util.timeutil import parse_ts


def make_deployment(n_sites=4, capacity=100_000.0):
    return AnycastDeployment.build(seed=7, n_sites=n_sites,
                                   per_site_capacity_pps=capacity)


class TestAnycastDeployment:
    def test_weights_normalized(self):
        deployment = make_deployment(6)
        assert sum(s.catchment_weight for s in deployment.sites) == \
            pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AnycastDeployment([])

    def test_spread_attack_conserves_rate(self):
        deployment = make_deployment(5)
        spread = deployment.spread_attack(1_000_000.0)
        assert sum(rate for _, rate in spread) == pytest.approx(1_000_000.0)

    def test_spread_rejects_negative(self):
        with pytest.raises(ValueError):
            make_deployment().spread_attack(-1)

    def test_site_for_region_prefers_local(self):
        sites = [AnycastSite("s0", "eu-west", 1.0, 1000.0),
                 AnycastSite("s1", "us-east", 5.0, 1000.0)]
        deployment = AnycastDeployment(sites)
        assert deployment.site_for_region("eu-west").site_id == "s0"

    def test_site_for_region_falls_back_to_largest(self):
        sites = [AnycastSite("s0", "eu-west", 1.0, 1000.0),
                 AnycastSite("s1", "us-east", 5.0, 1000.0)]
        deployment = AnycastDeployment(sites)
        assert deployment.site_for_region("oceania").site_id == "s1"

    def test_load_at_site_dilutes_attack(self):
        # The anycast resilience mechanism: per-site load is the
        # catchment share, so a 16-site deployment absorbs ~16x more.
        deployment = make_deployment(16, capacity=100_000.0)
        site = deployment.sites[0]
        util = deployment.load_at_site(site, 1_000_000.0)
        assert util < 1_000_000.0 / 100_000.0

    @given(st.integers(min_value=1, max_value=40))
    def test_build_site_count(self, n):
        assert make_deployment(n).n_sites == n

    def test_total_capacity(self):
        assert make_deployment(4, 100.0).total_capacity_pps == 400.0

    def test_build_rejects_bad_args(self):
        with pytest.raises(ValueError):
            AnycastDeployment.build(1, 0, 100.0)
        with pytest.raises(ValueError):
            AnycastDeployment.build(1, 4, 100.0, skew=1.5)


class TestCatchmentModel:
    def test_regional_policy(self):
        model = CatchmentModel("regional")
        deployment = make_deployment(4)
        site = model.site_for(deployment, deployment.sites[1].region)
        assert site.region == deployment.sites[1].region

    def test_largest_policy(self):
        model = CatchmentModel("largest")
        deployment = make_deployment(4)
        site = model.site_for(deployment, "anywhere")
        assert site.catchment_weight == max(
            s.catchment_weight for s in deployment.sites)

    def test_weighted_policy_needs_rng(self):
        model = CatchmentModel("weighted")
        with pytest.raises(ValueError):
            model.site_for(make_deployment(), "x")
        site = model.site_for(make_deployment(), "x", random.Random(1))
        assert site is not None

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            CatchmentModel("bogus")


class TestCensusSnapshot:
    def test_slash24_matching(self):
        snap = CensusSnapshot(taken_at=0)
        snap.add_ip(parse_ip("192.0.2.77"))
        assert snap.is_anycast(parse_ip("192.0.2.1"))
        assert not snap.is_anycast(parse_ip("192.0.3.1"))


class TestAnycastCensus:
    def _census(self, recall=1.0):
        ips = [parse_ip("192.0.2.1"), parse_ip("198.51.100.1")]
        return AnycastCensus.observe_world(seed=5, anycast_ips=ips,
                                           recall=recall)

    def test_quarterly_snapshots(self):
        census = self._census()
        assert len(census.snapshots) == len(CENSUS_DATES)

    def test_snapshot_for_before_first_uses_first(self):
        census = self._census()
        ts = parse_ts("2020-11-15")  # before Jan-2021 census
        assert census.snapshot_for(ts) is census.snapshots[0]

    def test_snapshot_for_selects_most_recent(self):
        census = self._census()
        ts = parse_ts("2021-08-15")
        assert census.snapshot_for(ts).taken_at == parse_ts("2021-07-01")

    def test_perfect_recall_detects_all(self):
        census = self._census(recall=1.0)
        assert census.is_anycast(parse_ip("192.0.2.200"), parse_ts("2021-02-01"))

    def test_lower_bound_character(self):
        # With imperfect recall some snapshot misses some /24 — the
        # census is a lower bound, never an over-approximation.
        ips = [parse_ip(f"198.18.{i}.1") for i in range(120)]
        census = AnycastCensus.observe_world(seed=5, anycast_ips=ips,
                                             recall=0.7)
        detected = sum(len(s) for s in census.snapshots)
        total = len(CENSUS_DATES) * len(ips)
        assert detected < total
        for snap in census.snapshots:
            for s24 in snap.anycast_slash24s:
                assert s24 in {slash24_of(ip) for ip in ips}

    def test_rejects_bad_recall(self):
        with pytest.raises(ValueError):
            AnycastCensus.observe_world(1, [], recall=0.0)

    def test_label_nsset(self):
        census = self._census()
        ts = parse_ts("2021-02-01")
        anycast_ip = parse_ip("192.0.2.9")
        unicast_ip = parse_ip("203.0.113.9")
        assert census.label_nsset([anycast_ip], ts) == "anycast"
        assert census.label_nsset([unicast_ip], ts) == "unicast"
        assert census.label_nsset([anycast_ip, unicast_ip], ts) == "partial"
        assert census.label_nsset([], ts) == "unicast"

    def test_empty_census_labels_unicast(self):
        census = AnycastCensus()
        assert not census.is_anycast(parse_ip("192.0.2.1"), 0)

    def test_dump_load_roundtrip(self):
        census = self._census()
        buf = io.StringIO()
        census.dump(buf)
        buf.seek(0)
        loaded = AnycastCensus.load(buf)
        assert len(loaded.snapshots) == len(census.snapshots)
        for a, b in zip(loaded.snapshots, census.snapshots):
            assert a.taken_at == b.taken_at
            assert a.anycast_slash24s == b.anycast_slash24s

    def test_load_rejects_malformed(self):
        with pytest.raises(ValueError):
            AnycastCensus.load(io.StringIO('{"nope": 1}\n'))

    def test_deterministic(self):
        a = self._census(recall=0.8)
        b = self._census(recall=0.8)
        for snap_a, snap_b in zip(a.snapshots, b.snapshots):
            assert snap_a.anycast_slash24s == snap_b.anycast_slash24s
