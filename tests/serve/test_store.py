"""Tests for the sharded measurement store: build, reuse, gc, catalog."""

import pytest

from repro import WorldConfig
from repro.artifacts import ArtifactStore, day_keys
from repro.obs import RunTelemetry
from repro.serve import SERVE_PHASES, ShardedStudyStore
from repro.util.timeutil import DAY, parse_ts

SMALL = dict(seed=11, n_domains=300, attacks_per_month=150,
             start="2021-03-01", end_exclusive="2021-03-04")


@pytest.fixture()
def config() -> WorldConfig:
    return WorldConfig(**SMALL)


class TestPlan:
    def test_cold_plan_computes_every_partition(self, config, tmp_path):
        store = ShardedStudyStore(config, str(tmp_path))
        plans = store.plan()
        assert len(plans) == 3
        for plan in plans:
            assert not plan.warm
            assert set(plan.missing) == set(SERVE_PHASES)

    def test_plan_is_side_effect_free(self, config, tmp_path):
        store = ShardedStudyStore(config, str(tmp_path))
        store.plan()
        assert len(ArtifactStore(str(tmp_path))) == 0

    def test_plan_keys_match_day_keys(self, config, tmp_path):
        store = ShardedStudyStore(config, str(tmp_path))
        expected = day_keys(config, store.world().attacks)
        for plan in store.plan():
            assert plan.keys == expected[plan.day]

    def test_to_doc_is_deterministic(self, config, tmp_path):
        store = ShardedStudyStore(config, str(tmp_path))
        docs = [p.to_doc() for p in store.plan()]
        again = [p.to_doc() for p in store.plan()]
        assert docs == again
        assert docs[0]["day"] == "2021-03-01"
        assert set(docs[0]["actions"].values()) == {"compute"}


class TestBuild:
    def test_cold_build_computes_everything(self, config, tmp_path):
        store = ShardedStudyStore(config, str(tmp_path))
        report = store.build()
        assert report.n_computed == 3 * len(SERVE_PHASES)
        assert report.n_reused == 0

    def test_warm_build_reuses_everything(self, config, tmp_path):
        ShardedStudyStore(config, str(tmp_path)).build()
        report = ShardedStudyStore(config, str(tmp_path)).build()
        assert report.n_computed == 0
        assert report.n_reused == 3 * len(SERVE_PHASES)

    def test_warm_summary_reports_zero_computed(self, config, tmp_path):
        ShardedStudyStore(config, str(tmp_path)).build()
        summary = ShardedStudyStore(config, str(tmp_path)).build().summary()
        assert summary.count("computed 0") == len(SERVE_PHASES)
        assert "(0 partitions computed, 12 reused)" in summary

    def test_partition_counters_match_report(self, config, tmp_path):
        telemetry = RunTelemetry.create()
        store = ShardedStudyStore(config, str(tmp_path),
                                  telemetry=telemetry)
        report = store.build()
        counters = telemetry.registry.snapshot()["counters"]
        for phase in SERVE_PHASES:
            computed = counters.get(
                f"repro.serve.partitions{{action=computed,phase={phase}}}", 0)
            reused = counters.get(
                f"repro.serve.partitions{{action=reused,phase={phase}}}", 0)
            assert computed == len(report.computed[phase])
            assert reused == 0

    def test_build_persists_catalog(self, config, tmp_path):
        ShardedStudyStore(config, str(tmp_path)).build()
        phases = {e.phase for e in ArtifactStore(str(tmp_path)).entries()}
        assert "catalog" in phases


class TestLoadDay:
    def test_load_outside_timeline_raises(self, config, tmp_path):
        store = ShardedStudyStore(config, str(tmp_path))
        with pytest.raises(KeyError):
            store.load_day(parse_ts("2020-01-01"), "events")

    def test_unknown_phase_raises(self, config, tmp_path):
        store = ShardedStudyStore(config, str(tmp_path))
        with pytest.raises(KeyError):
            store.load_day(parse_ts(SMALL["start"]), "nonsense")

    def test_cold_shard_returns_none(self, config, tmp_path):
        store = ShardedStudyStore(config, str(tmp_path))
        assert store.load_day(parse_ts(SMALL["start"]), "events") is None

    def test_built_shard_loads(self, config, tmp_path):
        store = ShardedStudyStore(config, str(tmp_path))
        store.build()
        day = parse_ts(SMALL["start"])
        join = store.load_day(day, "join")
        assert join is not None
        # Second load is served from the warm in-memory set (same object).
        assert store.load_day(day, "join") is join

    def test_loaded_cap_evicts_oldest(self, config, tmp_path):
        store = ShardedStudyStore(config, str(tmp_path), loaded_cap=2)
        store.build()
        days = store.days()
        for day in days:
            store.load_day(day, "join")
        assert len(store._loaded) <= 2


class TestMaintenance:
    def test_flag_is_scoped(self, config, tmp_path):
        store = ShardedStudyStore(config, str(tmp_path))
        assert not store.in_maintenance
        with store.maintenance():
            assert store.in_maintenance
        assert not store.in_maintenance

    def test_gc_to_zero_leaves_shards_cold(self, config, tmp_path):
        store = ShardedStudyStore(config, str(tmp_path))
        store.build()
        day = store.days()[0]
        assert store.load_day(day, "join") is not None
        evicted = store.gc(max_bytes=0)
        assert evicted
        assert store.load_day(day, "join") is None

    def test_gc_then_rebuild_recomputes(self, config, tmp_path):
        store = ShardedStudyStore(config, str(tmp_path))
        store.build()
        store.gc(max_bytes=0)
        report = ShardedStudyStore(config, str(tmp_path)).build()
        assert report.n_computed == 3 * len(SERVE_PHASES)


class TestCatalog:
    def test_catalog_contents(self, config, tmp_path):
        store = ShardedStudyStore(config, str(tmp_path))
        catalog = store.catalog()
        world = store.world()
        assert catalog["n_domains"] == len(world.directory.domains)
        assert catalog["start"] == parse_ts(SMALL["start"])
        assert catalog["end"] == parse_ts(SMALL["end_exclusive"])
        assert len(catalog["days"]) == 3
        some_domain = next(iter(catalog["domains"]))
        assert isinstance(catalog["domains"][some_domain], int)

    def test_catalog_read_back_from_cache(self, config, tmp_path):
        ShardedStudyStore(config, str(tmp_path)).catalog()
        fresh = ShardedStudyStore(config, str(tmp_path))
        catalog = fresh.catalog()
        # No world build was needed: the catalog came from the cache.
        assert fresh._world is None
        assert catalog["n_domains"] > 0


class TestDayChaining:
    def test_events_day_uses_neighbouring_crawl(self, config, tmp_path):
        """An events partition must see measurements past midnight:
        attacks near day end have impact windows crossing into the
        next day."""
        store = ShardedStudyStore(config, str(tmp_path))
        store.build()
        for day in store.days():
            events = store.load_day(day, "events")
            for event in events:
                assert event.attack.start >= day
                assert event.attack.start < day + DAY
