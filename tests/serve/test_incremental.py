"""Editing one day's attack schedule invalidates only that day's
chained keys: bounded recompute, byte-identical untouched artifacts."""

import pytest

from repro import WorldConfig
from repro.artifacts import ArtifactStore, day_keys
from repro.serve import SERVE_PHASES, ShardedStudyStore, scale_attacks_on_day
from repro.util.timeutil import parse_ts

SMALL = dict(seed=11, n_domains=300, attacks_per_month=150,
             start="2021-03-01", end_exclusive="2021-03-08")
EDIT_DAY = "2021-03-04"


@pytest.fixture()
def config() -> WorldConfig:
    return WorldConfig(**SMALL)


def edit(attacks):
    return scale_attacks_on_day(attacks, parse_ts(EDIT_DAY), 3.0)


def changed_days(config, attacks):
    """Per phase, the set of days whose fingerprint key changes under
    the edit — derived purely from the key map, no pipeline run."""
    before = day_keys(config, attacks)
    after = day_keys(config, edit(list(attacks)))
    assert set(before) == set(after)
    out = {phase: set() for phase in SERVE_PHASES}
    for day in before:
        for phase in SERVE_PHASES:
            if before[day][phase] != after[day][phase]:
                out[phase].add(day)
    return out


class TestKeyInvalidation:
    def test_edit_changes_some_keys_not_all(self, config, tmp_path):
        store = ShardedStudyStore(config, str(tmp_path))
        changed = changed_days(config, store.world().attacks)
        edit_day = parse_ts(EDIT_DAY)
        all_days = set(store.days())
        for phase in SERVE_PHASES:
            # The edited day itself is always dirtied...
            assert edit_day in changed[phase]
            # ...but far-away days never are.
            assert changed[phase] != all_days

    def test_scaling_by_one_changes_nothing(self, config, tmp_path):
        store = ShardedStudyStore(config, str(tmp_path))
        attacks = store.world().attacks
        before = day_keys(config, attacks)
        after = day_keys(config, scale_attacks_on_day(
            list(attacks), parse_ts(EDIT_DAY), 1.0))
        assert before == after

    def test_different_edit_days_dirty_different_keys(self, config,
                                                      tmp_path):
        store = ShardedStudyStore(config, str(tmp_path))
        attacks = store.world().attacks
        base = day_keys(config, attacks)
        a = day_keys(config, scale_attacks_on_day(
            list(attacks), parse_ts("2021-03-02"), 3.0))
        b = day_keys(config, scale_attacks_on_day(
            list(attacks), parse_ts("2021-03-06"), 3.0))
        dirty_a = {d for d in base if a[d] != base[d]}
        dirty_b = {d for d in base if b[d] != base[d]}
        assert dirty_a != dirty_b


class TestIncrementalRebuild:
    def test_rebuild_recomputes_exactly_the_changed_days(self, config,
                                                         tmp_path):
        cold = ShardedStudyStore(config, str(tmp_path))
        cold.build()
        changed = changed_days(config, cold.world().attacks)
        report = ShardedStudyStore(config, str(tmp_path),
                                   edit=edit).build()
        for phase in SERVE_PHASES:
            assert set(report.computed[phase]) == changed[phase], phase
            assert set(report.reused[phase]) == \
                set(cold.days()) - changed[phase], phase

    def test_untouched_days_are_byte_identical(self, config, tmp_path):
        """A from-scratch build of the edited schedule produces the
        same bytes as the original build for every unchanged key."""
        dir_a = str(tmp_path / "a")
        dir_b = str(tmp_path / "b")
        store_a = ShardedStudyStore(config, dir_a)
        store_a.build()
        ShardedStudyStore(config, dir_b, edit=edit).build()
        keys_before = day_keys(config, store_a.world().attacks)
        changed = changed_days(config, store_a.world().attacks)
        raw_a = ArtifactStore(dir_a)
        raw_b = ArtifactStore(dir_b)
        n_compared = 0
        for day, keys in keys_before.items():
            for phase in SERVE_PHASES:
                if day in changed[phase]:
                    continue
                blob_a = raw_a.get(keys[phase], touch=False)
                blob_b = raw_b.get(keys[phase], touch=False)
                assert blob_a is not None and blob_a == blob_b, \
                    (phase, day)
                n_compared += 1
        assert n_compared > 0

    def test_edited_day_artifacts_differ(self, config, tmp_path):
        dir_a = str(tmp_path / "a")
        dir_b = str(tmp_path / "b")
        store_a = ShardedStudyStore(config, dir_a)
        store_a.build()
        store_b = ShardedStudyStore(config, dir_b, edit=edit)
        store_b.build()
        day = parse_ts(EDIT_DAY)
        key_a = store_a.day_keys()[day]["telescope"]
        key_b = store_b.day_keys()[day]["telescope"]
        assert key_a != key_b
        assert ArtifactStore(dir_a).get(key_a, touch=False) != \
            ArtifactStore(dir_b).get(key_b, touch=False)

    def test_second_edited_rebuild_is_fully_warm(self, config, tmp_path):
        ShardedStudyStore(config, str(tmp_path)).build()
        ShardedStudyStore(config, str(tmp_path), edit=edit).build()
        report = ShardedStudyStore(config, str(tmp_path),
                                   edit=edit).build()
        assert report.n_computed == 0
