"""Tests for the query service and its asyncio HTTP front end."""

import asyncio
import json

import pytest

from repro.net.ip import ip_to_str
from repro.obs import RunTelemetry
from repro.serve import (
    QueryServer,
    QueryService,
    ServeResponse,
    ShardedStudyStore,
)


def body_of(response: ServeResponse) -> dict:
    parsed = json.loads(response.to_bytes())
    # The wire form must round-trip the body exactly.
    assert parsed == json.loads(json.dumps(response.body))
    return parsed


class TestBasics:
    def test_healthz(self, service, built_store):
        response = service.handle("/healthz")
        assert response.status == 200
        assert body_of(response) == {
            "status": "ok", "maintenance": False,
            "days": len(built_store.days())}

    def test_meta(self, service, serve_config):
        response = service.handle("/v1/meta")
        assert response.status == 200
        body = body_of(response)
        assert body["days"] == 7
        assert body["start"].startswith(serve_config.start)

    def test_unknown_endpoint_404(self, service):
        response = service.handle("/nope")
        assert response.status == 404
        assert body_of(response)["error"] == "unknown_endpoint"

    def test_method_not_allowed(self, service):
        assert service.handle("/healthz", method="POST").status == 405

    def test_trailing_slash_is_tolerated(self, service):
        assert service.handle("/healthz/").status == 200

    def test_responses_are_deterministic(self, service):
        first = service.handle("/v1/top?by=victims&n=5").to_bytes()
        second = service.handle("/v1/top?by=victims&n=5").to_bytes()
        assert first == second

    def test_metrics_exposition(self, built_store):
        telemetry = RunTelemetry.create()
        service = QueryService(built_store, telemetry=telemetry)
        service.handle("/healthz")
        response = service.handle("/metrics")
        assert response.status == 200
        # Raw Prometheus text exposition, not JSON.
        assert response.content_type.startswith("text/plain")
        assert "repro_serve_queries" in response.to_bytes().decode("utf-8")


class TestImpact:
    def test_missing_params_400(self, service):
        assert service.handle("/v1/impact").status == 400
        assert service.handle("/v1/impact?attack=1.2.3.4@0").status == 400

    def test_malformed_attack_400(self, service):
        target = "/v1/impact?attack=nonsense&domain=x"
        assert service.handle(target).status == 400

    def test_unknown_domain_404(self, service, an_event):
        attack = an_event.attack
        target = (f"/v1/impact?attack={ip_to_str(attack.victim_ip)}"
                  f"@{attack.start}&domain=no-such-domain.example")
        assert service.handle(target).status == 404

    def test_unknown_attack_404(self, service, built_store):
        domain = next(iter(built_store.catalog()["domains"]))
        target = f"/v1/impact?attack=203.0.113.9@12345&domain={domain}"
        response = service.handle(target)
        assert response.status == 404
        assert body_of(response)["error"] == "not_found"

    def test_event_found(self, service, built_store, an_event):
        catalog = built_store.catalog()
        domain = next(name for name, nsset in catalog["domains"].items()
                      if nsset == an_event.nsset_id)
        attack = an_event.attack
        target = (f"/v1/impact?attack={ip_to_str(attack.victim_ip)}"
                  f"@{attack.start}&domain={domain}")
        response = service.handle(target)
        assert response.status == 200
        body = body_of(response)
        assert body["nsset_id"] == an_event.nsset_id
        impact = body["impact"]
        assert impact["n_measured"] == an_event.n_measured
        assert impact["points"]
        assert impact["company"] == an_event.company

    def test_attack_without_event_for_domain(self, service, built_store,
                                             an_event):
        catalog = built_store.catalog()
        domain = next(name for name, nsset in catalog["domains"].items()
                      if nsset != an_event.nsset_id)
        attack = an_event.attack
        target = (f"/v1/impact?attack={ip_to_str(attack.victim_ip)}"
                  f"@{attack.start}&domain={domain}")
        response = service.handle(target)
        assert response.status == 200
        body = body_of(response)
        assert body["impact"] is None
        assert body["reason"] in ("no_event_for_nsset",
                                  "no_measurable_impact")

    def test_classified_attack_without_any_event(self, service,
                                                 built_store):
        with_events = set()
        for day in built_store.days():
            for event in built_store.load_day(day, "events"):
                with_events.add((event.attack.victim_ip,
                                 event.attack.start))
        quiet = None
        for day in built_store.days():
            for classified in built_store.load_day(day, "join").classified:
                attack = classified.attack
                if (attack.victim_ip, attack.start) not in with_events:
                    quiet = attack
                    break
            if quiet:
                break
        assert quiet is not None
        domain = next(iter(built_store.catalog()["domains"]))
        target = (f"/v1/impact?attack={ip_to_str(quiet.victim_ip)}"
                  f"@{quiet.start}&domain={domain}")
        body = body_of(service.handle(target))
        assert body["impact"] is None
        assert body["reason"] == "no_measurable_impact"


class TestSlicesAndTables:
    def test_slices_for_known_nsset(self, service, built_store, an_event):
        response = service.handle(f"/v1/slices?nsset={an_event.nsset_id}")
        assert response.status == 200
        body = body_of(response)
        assert body["nsset_id"] == an_event.nsset_id
        assert body["points"]
        point = body["points"][0]
        assert set(point) == {"day", "n", "failure_rate", "avg_rtt",
                              "timeouts", "servfails"}

    def test_slices_respects_range(self, service, an_event):
        target = (f"/v1/slices?nsset={an_event.nsset_id}"
                  "&start=2021-03-02&end=2021-03-04")
        body = body_of(service.handle(target))
        assert [p["day"] for p in body["points"]] == \
            ["2021-03-02", "2021-03-03"]

    def test_slices_bad_nsset_400(self, service):
        assert service.handle("/v1/slices?nsset=abc").status == 400

    def test_slices_unknown_nsset_404(self, service):
        assert service.handle("/v1/slices?nsset=99999999").status == 404

    def test_slices_empty_range_400(self, service, an_event):
        target = (f"/v1/slices?nsset={an_event.nsset_id}"
                  "&start=2021-03-04&end=2021-03-02")
        assert service.handle(target).status == 400

    def test_top_victims(self, service):
        body = body_of(service.handle("/v1/top?by=victims&n=3"))
        assert body["rows"]
        assert len(body["rows"]) <= 3
        counts = [row["n_attacks"] for row in body["rows"]]
        assert counts == sorted(counts, reverse=True)

    def test_top_events(self, service, built_store):
        n_events = sum(len(built_store.load_day(d, "events"))
                       for d in built_store.days())
        body = body_of(service.handle("/v1/top?by=events&n=50"))
        assert len(body["rows"]) == min(50, n_events)

    def test_top_companies(self, service):
        response = service.handle("/v1/top?by=companies&n=5")
        assert response.status == 200

    def test_top_bad_params_400(self, service):
        assert service.handle("/v1/top?by=bogus").status == 400
        assert service.handle("/v1/top?by=victims&n=0").status == 400
        assert service.handle("/v1/top?by=victims&n=x").status == 400

    def test_events_by_day(self, service, built_store, an_event):
        from repro.util.timeutil import day_start, format_ts

        day = format_ts(day_start(an_event.attack.start))[:10]
        body = body_of(service.handle(f"/v1/events?day={day}"))
        assert body["n_events"] >= 1
        attacks = {row["attack"] for row in body["events"]}
        expected = (f"{ip_to_str(an_event.attack.victim_ip)}"
                    f"@{an_event.attack.start}")
        assert expected in attacks

    def test_events_outside_timeline_404(self, service):
        assert service.handle("/v1/events?day=2019-01-01").status == 404


class TestDegradation:
    def test_maintenance_503_with_retry_after(self, service, built_store):
        with built_store.maintenance():
            response = service.handle("/v1/meta")
        assert response.status == 503
        assert ("Retry-After", "5") in response.headers
        assert body_of(response)["error"] == "maintenance"
        assert service.handle("/v1/meta").status == 200

    def test_healthz_stays_up_during_maintenance(self, service,
                                                 built_store):
        with built_store.maintenance():
            response = service.handle("/healthz")
        assert response.status == 200
        assert body_of(response)["maintenance"] is True

    def test_cold_shard_503(self, serve_config, tmp_path):
        store = ShardedStudyStore(serve_config, str(tmp_path))
        service = QueryService(store)
        response = service.handle("/v1/events?day=2021-03-02")
        assert response.status == 503
        body = body_of(response)
        assert body["error"] == "shard_cold"
        assert ("Retry-After", "30") in response.headers


class TestAccounting:
    def test_every_query_lands_in_exactly_one_outcome(self, built_store):
        telemetry = RunTelemetry.create()
        service = QueryService(built_store, telemetry=telemetry)
        targets = ["/healthz", "/v1/meta", "/nope",
                   "/v1/impact", "/v1/top?by=victims&n=2",
                   "/v1/slices?nsset=99999999", "/v1/top?by=bogus"]
        for target in targets:
            service.handle(target)
        counters = telemetry.registry.snapshot()["counters"]
        total = sum(value for key, value in counters.items()
                    if key.startswith("repro.serve.queries{"))
        assert total == len(targets)
        histograms = telemetry.registry.snapshot()["histograms"]
        observed = sum(
            h["count"] for key, h in histograms.items()
            if key.startswith("repro.serve.query_latency_ms{"))
        assert observed == len(targets)

    def test_journal_records_every_query(self, built_store, tmp_path):
        from repro.obs import RunJournal, read_journal

        telemetry = RunTelemetry.create()
        path = str(tmp_path / "journal.jsonl")
        telemetry.attach_journal(RunJournal(
            path, run_id=telemetry.run_id, clock=telemetry.clock,
            started_at_utc=telemetry.started_at_utc))
        service = QueryService(built_store, telemetry=telemetry)
        service.handle("/v1/meta")
        service.handle("/nope")
        telemetry.journal.close()
        types = [rec["type"] for rec in read_journal(path)]
        assert types.count("query.start") == 2
        assert types.count("query.finish") == 2


async def _fetch(port, target):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {target} HTTP/1.1\r\nHost: t\r\n"
                 "Connection: close\r\n\r\n".encode())
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers["content-length"]))
    writer.close()
    return status, headers, json.loads(body)


class TestHttpServer:
    def test_round_trips_and_keep_alive(self, service):
        async def scenario():
            server = QueryServer(service, port=0)
            await server.start()
            try:
                port = server.port
                status, headers, body = await _fetch(port, "/healthz")
                assert status == 200
                assert body["status"] == "ok"
                assert headers["content-type"] == "application/json"

                # Two requests over one keep-alive connection.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                for _ in range(2):
                    writer.write(b"GET /v1/meta HTTP/1.1\r\nHost: t\r\n\r\n")
                    await writer.drain()
                    assert (await reader.readline()).startswith(
                        b"HTTP/1.1 200")
                    length = None
                    while True:
                        line = await reader.readline()
                        if line in (b"\r\n", b"\n"):
                            break
                        if line.lower().startswith(b"content-length"):
                            length = int(line.split(b":")[1])
                    await reader.readexactly(length)
                writer.close()

                status, headers, body = await _fetch(port, "/bogus")
                assert status == 404
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_concurrent_clients(self, service):
        async def scenario():
            server = QueryServer(service, port=0)
            await server.start()
            try:
                results = await asyncio.gather(*[
                    _fetch(server.port,
                           "/v1/top?by=victims&n=2" if i % 2
                           else "/healthz")
                    for i in range(32)
                ])
                assert all(status == 200 for status, _, _ in results)
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_malformed_request_line(self, service):
        async def scenario():
            server = QueryServer(service, port=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b"NONSENSE\r\n\r\n")
                await writer.drain()
                status = int((await reader.readline()).split()[1])
                assert status == 400
                writer.close()
            finally:
                await server.stop()

        asyncio.run(scenario())
