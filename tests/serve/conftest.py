"""Shared serve fixtures: one small built shard store per session."""

from __future__ import annotations

import pytest

from repro import WorldConfig
from repro.serve import QueryService, ShardedStudyStore

SERVE_CONFIG = dict(seed=7, n_domains=700, attacks_per_month=400,
                    start="2021-03-01", end_exclusive="2021-03-08")


@pytest.fixture(scope="session")
def serve_config() -> WorldConfig:
    return WorldConfig(**SERVE_CONFIG)


@pytest.fixture(scope="session")
def built_store(serve_config, tmp_path_factory):
    """A cold-built store over a session-lifetime cache directory."""
    cache_dir = str(tmp_path_factory.mktemp("shards"))
    store = ShardedStudyStore(serve_config, cache_dir)
    store.build()
    return store


@pytest.fixture(scope="session")
def service(built_store) -> QueryService:
    return QueryService(built_store)


@pytest.fixture(scope="session")
def an_event(built_store):
    """Some attack event from the built store (the config guarantees a
    few), for impact-endpoint tests."""
    for day in built_store.days():
        events = built_store.load_day(day, "events")
        if events:
            return events[0]
    raise AssertionError("serve test config produced no events; "
                         "raise attacks_per_month")
