"""Unit equivalence tests for :mod:`repro.columnar`.

Every batch routine must be bit-identical to its object counterpart —
with NumPy (the fast path) and without (the stdlib fallback the no-deps
CI matrix runs). The ``use_numpy`` fixture parametrizes both.
"""

import math
import random

import pytest

from repro.columnar import (
    HAVE_NUMPY,
    EventFrame,
    MeasurementBatch,
    ObservationBatch,
    StoreFrame,
    analyze_impact_frame,
    batchlib,
    curate_records,
    impact_series_frame,
    infer_attacks,
)
from repro.dns.rcode import ResponseStatus
from repro.obs import RunTelemetry
from repro.openintel.storage import MeasurementStore

STATUSES = list(ResponseStatus)


@pytest.fixture(params=["numpy", "stdlib"])
def use_numpy(request, monkeypatch):
    """Run the test under both flush implementations."""
    if request.param == "numpy":
        if not HAVE_NUMPY:
            pytest.skip("numpy unavailable")
    else:
        monkeypatch.setattr(batchlib, "_np", None)
    return request.param == "numpy"


def _random_rows(n, seed=7):
    rng = random.Random(seed)
    for _ in range(n):
        rtt = rng.choice([rng.expovariate(0.01), float("nan"), -1.0, 2e9,
                          rng.random() * 100])
        yield (rng.randrange(40), rng.randrange(0, 30 * 86400),
               rng.choice(STATUSES), rtt, rng.random() < 0.3)


class TestMeasurementBatch:
    def test_flush_matches_add_fast(self, use_numpy):
        ref = MeasurementStore()
        batch = MeasurementBatch()
        for row in _random_rows(5000):
            ref.add_fast(*row)
            batch.append(*row)
        out = MeasurementStore()
        batch.flush_into(out)
        assert out == ref
        assert out.n_measurements == ref.n_measurements
        assert out.n_rejected == ref.n_rejected

    def test_flush_into_prepopulated_store(self, use_numpy):
        rows = list(_random_rows(3000, seed=11))
        ref = MeasurementStore()
        for row in rows:
            ref.add_fast(*row)
        # Fill the first half by rows, flush the second half on top:
        # existing aggregates take the per-value exact-fold path.
        out = MeasurementStore()
        batch = MeasurementBatch()
        for row in rows[:1500]:
            out.add_fast(*row)
        for row in rows[1500:]:
            batch.append(*row)
        batch.flush_into(out)
        assert out == ref

    def test_extend_concatenates_shards(self, use_numpy):
        rows = list(_random_rows(2000, seed=3))
        whole = MeasurementBatch()
        for row in rows:
            whole.append(*row)
        merged = MeasurementBatch()
        for lo in range(0, len(rows), 500):
            shard = MeasurementBatch()
            for row in rows[lo:lo + 500]:
                shard.append(*row)
            merged.extend(shard)
        a, b = MeasurementStore(), MeasurementStore()
        whole.flush_into(a)
        merged.flush_into(b)
        assert a == b

    def test_nan_and_out_of_range_rows_rejected(self, use_numpy):
        batch = MeasurementBatch()
        batch.append(1, 0, ResponseStatus.OK, float("nan"), True)
        batch.append(1, 0, ResponseStatus.OK, -0.5, True)
        batch.append(1, 0, ResponseStatus.OK, 2e9, True)
        batch.append(1, 0, ResponseStatus.OK, 10.0, True)
        store = MeasurementStore()
        batch.flush_into(store)
        assert store.n_rejected == 3
        assert store.n_measurements == 1

    def test_exactness_against_shewchuk_partials(self, use_numpy):
        # Many values whose naive sum differs from the exact one.
        rng = random.Random(1)
        values = [rng.random() * 10.0 ** rng.randrange(-8, 9)
                  for _ in range(4000)]
        ref = MeasurementStore()
        batch = MeasurementBatch()
        for v in values:
            ref.add_fast(0, 100, ResponseStatus.OK, v, True)
            batch.append(0, 100, ResponseStatus.OK, v, True)
        out = MeasurementStore()
        batch.flush_into(out)
        key = (0, 0)
        assert out.buckets[key].rtt_sum == ref.buckets[key].rtt_sum
        assert out.buckets[key].rtt_sum == math.fsum(values)

    def test_flush_emits_columnar_metrics(self, use_numpy):
        telemetry = RunTelemetry.create()
        batch = MeasurementBatch()
        batch.append(1, 0, ResponseStatus.OK, 10.0, True)
        batch.append(1, 0, ResponseStatus.OK, float("nan"), True)
        batch.flush_into(MeasurementStore(), registry=telemetry.registry)
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["repro.columnar.rows{kind=measurement}"] == 2
        assert counters["repro.columnar.rejected_rows"] == 1
        assert counters["repro.columnar.batches{kind=measurement}"] == 1


def _observations(seed=3, n_attacks=40):
    from repro.attacks.model import Attack, AttackVector
    from repro.telescope.backscatter import BackscatterSimulator
    from repro.telescope.darknet import Darknet
    from repro.util.timeutil import HOUR, Window

    rng = random.Random(seed)
    attacks = []
    for _ in range(n_attacks):
        start = rng.randrange(0, 20 * 86400)
        attacks.append(Attack(
            victim_ip=0x0A000001 + rng.randrange(10),
            window=Window(start, start + rng.randrange(600, 5 * HOUR)),
            vectors=[AttackVector.tcp_syn(
                53, rng.choice([500.0, 5e3, 5e4]))]))
    sim = BackscatterSimulator(Darknet(), random.Random(1))
    return list(sim.observe_all(attacks))


class TestObservationBatch:
    def test_infer_matches_object_classifier(self, use_numpy):
        from repro.telescope.rsdos import RSDoSClassifier

        obs = _observations()
        batch = ObservationBatch.from_observations(obs)
        assert infer_attacks(batch) == RSDoSClassifier().infer(obs)

    def test_curation_matches_object_feed(self, use_numpy):
        from repro.telescope.feed import FeedRecord

        obs = _observations(seed=9)
        batch = ObservationBatch.from_observations(obs)
        attacks = infer_attacks(batch)
        keep = {}
        for a in attacks:
            keep.setdefault(a.victim_ip, []).append(a.window)
        expected = [FeedRecord.from_observation(o) for o in obs
                    if any(w.contains(o.window_ts)
                           for w in keep.get(o.victim_ip, ()))]
        assert curate_records(batch, attacks) == expected

    def test_round_trip_to_observations(self):
        obs = _observations(seed=5, n_attacks=10)
        batch = ObservationBatch.from_observations(obs)
        assert batch.to_observations() == obs

    def test_empty_batch(self, use_numpy):
        batch = ObservationBatch()
        assert infer_attacks(batch) == []
        assert curate_records(batch, []) == []


class TestFrames:
    @pytest.fixture(scope="class")
    def study(self, tiny_study):
        return tiny_study

    def test_impact_series_frame_matches_object(self, study):
        from repro.core.metrics import impact_series
        from repro.util.timeutil import Window

        frame = StoreFrame(study.store)
        for classified in study.join.dns_direct_attacks:
            window = Window(classified.attack.start, classified.attack.end)
            for nsset_id in classified.nsset_ids:
                obj = impact_series(study.store, nsset_id, window,
                                    min_bucket_n=3)
                col = impact_series_frame(frame, nsset_id, window,
                                          min_bucket_n=3)
                assert col.baseline_rtt == obj.baseline_rtt
                assert col.degraded == obj.degraded
                assert col.n_corrupt == obj.n_corrupt
                assert col.points == obj.points

    def test_extract_events_frame_matches_object(self, study):
        from repro.columnar.frame import extract_events_frame

        frame = StoreFrame(study.store)
        events = extract_events_frame(study.join, frame, study.metadata)
        assert events == study.events

    def test_event_frame_scalars_match_properties(self, study):
        frame = EventFrame(study.events)
        for event, mean, impact in zip(study.events, frame.mean_impact,
                                       frame.impact):
            assert event.series.mean_impact == mean
            assert event.series.impact == impact

    def test_analyze_impact_frame_matches_object(self, study):
        from repro.core.impact import analyze_impact

        obj = analyze_impact(study.events)
        col = analyze_impact_frame(EventFrame(study.events))
        for attr in ("n_events", "n_with_impact", "over_10x", "over_100x",
                     "grid", "peak_by_size", "mean_by_size"):
            assert getattr(col, attr) == getattr(obj, attr)
