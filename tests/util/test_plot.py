"""Tests for the ASCII plotting helpers."""

import pytest

from repro.util.plot import ascii_histogram, ascii_scatter, ascii_series


class TestScatter:
    def test_empty(self):
        assert "(no data)" in ascii_scatter([], [], title="T")

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_scatter([1], [1, 2])

    def test_contains_markers(self):
        text = ascii_scatter([1, 2, 3], [1, 2, 3], width=20, height=8)
        assert text.count("o") == 3

    def test_density_escalation(self):
        text = ascii_scatter([1, 1, 1], [1, 1, 1], width=10, height=5)
        assert "@" in text

    def test_log_axes(self):
        text = ascii_scatter([1, 10, 100, 1000], [1, 10, 100, 1000],
                             log_x=True, log_y=True, width=30, height=9)
        assert "1e+0" in text and "1e+3" in text

    def test_title_and_labels(self):
        text = ascii_scatter([1, 2], [3, 4], title="My Plot",
                             x_label="dur", y_label="impact")
        assert text.startswith("My Plot")
        assert "dur" in text and "impact" in text

    def test_geometry(self):
        text = ascii_scatter([1, 2], [1, 2], width=25, height=7)
        plot_rows = [l for l in text.splitlines() if "|" in l]
        assert len(plot_rows) == 7


class TestSeries:
    def test_empty(self):
        assert "(no data)" in ascii_series([], title="S")

    def test_column_shape(self):
        points = [(i, i) for i in range(50)]
        text = ascii_series(points, width=25, height=6)
        rows = [l for l in text.splitlines() if "|" in l]
        assert len(rows) == 6
        # Rising series: the top row has hashes only on the right side.
        top = rows[0].split("|")[1]
        assert top.strip().startswith("#") is False or \
            top.index("#") > len(top) // 2

    def test_axis_labels(self):
        text = ascii_series([(0, 1.0), (10, 100.0)], log_y=True)
        assert "1e+2" in text


class TestHistogram:
    def test_bars_scale(self):
        text = ascii_histogram(["a", "b"], [10, 5], width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_zero_counts(self):
        text = ascii_histogram(["a", "b"], [0, 0])
        assert "#" not in text

    def test_counts_printed(self):
        text = ascii_histogram(["x"], [7])
        assert "7" in text

    def test_mismatch(self):
        with pytest.raises(ValueError):
            ascii_histogram(["a"], [1, 2])
