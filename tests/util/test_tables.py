"""Tests for table rendering."""

import pytest

from repro.util.tables import (
    Table,
    format_bps,
    format_count,
    format_pct,
    format_si,
    paper_vs_measured,
)


class TestFormatters:
    def test_count(self):
        assert format_count(4039485) == "4,039,485"

    def test_count_rounds(self):
        assert format_count(12.7) == "13"

    def test_pct(self):
        assert format_pct(0.0121) == "1.21%"

    def test_pct_digits(self):
        assert format_pct(0.5, digits=0) == "50%"

    def test_si_thousands(self):
        assert format_si(21800) == "21.8K"

    def test_si_millions(self):
        assert format_si(7_000_000) == "7M"

    def test_si_small(self):
        assert format_si(42) == "42"

    def test_bps_gbps(self):
        assert format_bps(1.4e9) == "1.4 Gbps"

    def test_bps_mbps(self):
        assert format_bps(247e6) == "247 Mbps"


class TestTable:
    def test_render_includes_headers_and_rows(self):
        table = Table(["a", "b"], title="T")
        table.add_row(["x", 1])
        rendered = table.render()
        assert "T" in rendered
        assert "a" in rendered and "b" in rendered
        assert "x" in rendered

    def test_rejects_wrong_arity(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(["only one"])

    def test_number_formatting(self):
        table = Table(["n"])
        table.add_row([1234567])
        assert "1,234,567" in table.render()

    def test_alignment_consistent(self):
        table = Table(["col"])
        table.add_row(["short"])
        table.add_row(["a much longer cell"])
        lines = table.render().splitlines()
        data_lines = lines[1:]  # skip title-less header
        widths = {len(line) for line in data_lines}
        assert len(widths) == 1

    def test_separator(self):
        table = Table(["a"])
        table.add_row(["x"])
        table.add_separator()
        table.add_row(["y"])
        assert table.render().count("---") >= 1

    def test_caption(self):
        table = Table(["a"], caption="the caption")
        table.add_row(["x"])
        assert table.render().endswith("the caption")


class TestPaperVsMeasured:
    def test_three_columns(self):
        rendered = paper_vs_measured("cmp", [["metric", "1", "2"]])
        assert "paper" in rendered
        assert "measured" in rendered
        assert "metric" in rendered
