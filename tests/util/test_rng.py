"""Tests for deterministic RNG streams."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import (
    RngStreams,
    derive_seed,
    sample_unique,
    weighted_choice,
    zipf_weights,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_is_not_concatenation(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(42, "ab") != derive_seed(42, "a", "b")

    @given(st.integers(min_value=0, max_value=2 ** 63), st.text(max_size=50))
    def test_always_in_64bit_range(self, root, name):
        seed = derive_seed(root, name)
        assert 0 <= seed < 2 ** 64


class TestRngStreams:
    def test_same_stream_object_returned(self):
        streams = RngStreams(42)
        assert streams.stream("x") is streams.stream("x")

    def test_streams_independent(self):
        # Drawing from one stream must not disturb another.
        a = RngStreams(42)
        b = RngStreams(42)
        _ = [a.stream("noise").random() for _ in range(100)]
        assert a.stream("data").random() == b.stream("data").random()

    def test_fork_changes_streams(self):
        streams = RngStreams(42)
        child = streams.fork("sub")
        assert child.stream("x").random() != streams.stream("x").random()

    def test_fork_deterministic(self):
        a = RngStreams(42).fork("sub").stream("x").random()
        b = RngStreams(42).fork("sub").stream("x").random()
        assert a == b

    def test_spawn_seed_stable(self):
        assert RngStreams(7).spawn_seed("x") == RngStreams(7).spawn_seed("x")


class TestWeightedChoice:
    def test_single_item(self, rng):
        assert weighted_choice(rng, ["a"], [1.0]) == "a"

    def test_zero_weight_never_chosen(self, rng):
        picks = {weighted_choice(rng, ["a", "b"], [1.0, 0.0])
                 for _ in range(200)}
        assert picks == {"a"}

    def test_roughly_proportional(self, rng):
        n = 10_000
        count = sum(1 for _ in range(n)
                    if weighted_choice(rng, ["a", "b"], [3.0, 1.0]) == "a")
        assert 0.70 < count / n < 0.80

    def test_rejects_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            weighted_choice(rng, [], [])

    def test_rejects_zero_total(self, rng):
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [0.0])


class TestZipfWeights:
    def test_length(self):
        assert len(zipf_weights(10)) == 10

    def test_monotone_decreasing(self):
        weights = zipf_weights(20, alpha=1.2)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_alpha_zero_uniform(self):
        assert zipf_weights(5, alpha=0.0) == [1.0] * 5

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, alpha=-1)


class TestSampleUnique:
    @given(st.integers(min_value=0, max_value=200),
           st.integers(min_value=1, max_value=500))
    def test_unique_and_in_range(self, k, population):
        if k > population:
            return
        rng = random.Random(9)
        values = list(sample_unique(rng, population, k))
        assert len(values) == len(set(values)) == k
        assert all(0 <= v < population for v in values)

    def test_rejects_oversample(self, rng):
        with pytest.raises(ValueError):
            sample_unique(rng, 5, 6)

    def test_rejects_negative(self, rng):
        with pytest.raises(ValueError):
            sample_unique(rng, 5, -1)

    def test_large_population_small_k(self, rng):
        values = list(sample_unique(rng, 2 ** 32, 1000))
        assert len(set(values)) == 1000
