"""Tests for the time axis."""

import pytest
from hypothesis import given, strategies as st

from repro.util.timeutil import (
    DAY,
    FIVE_MINUTES,
    HOUR,
    Timeline,
    Window,
    day_start,
    format_ts,
    iter_days,
    iter_windows,
    month_key,
    parse_ts,
    window_start,
)

TS = st.integers(min_value=0, max_value=2 ** 33)


class TestParseFormat:
    def test_parse_date_only(self):
        assert parse_ts("2020-11-01") == 1604188800

    def test_parse_with_time(self):
        assert parse_ts("2020-11-01 00:05") == 1604188800 + 300

    def test_parse_with_seconds(self):
        assert parse_ts("2020-11-01 00:00:30") == 1604188830

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_ts("not a date")

    @given(TS)
    def test_roundtrip_to_minute(self, ts):
        ts -= ts % 60
        assert parse_ts(format_ts(ts)) == ts


class TestWindowStart:
    @given(TS)
    def test_five_minute_alignment(self, ts):
        start = window_start(ts)
        assert start % FIVE_MINUTES == 0
        assert start <= ts < start + FIVE_MINUTES

    @given(TS)
    def test_day_alignment(self, ts):
        start = day_start(ts)
        assert start % DAY == 0
        assert start <= ts < start + DAY

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            window_start(100, 0)

    @given(TS)
    def test_idempotent(self, ts):
        assert window_start(window_start(ts)) == window_start(ts)


class TestIterWindows:
    def test_covers_interval(self):
        windows = list(iter_windows(0, 1500))
        assert windows == [0, 300, 600, 900, 1200]

    def test_unaligned_start(self):
        windows = list(iter_windows(250, 650))
        assert windows == [0, 300, 600]

    def test_empty_when_end_before_start(self):
        assert list(iter_windows(600, 300)) == []

    def test_iter_days(self):
        days = list(iter_days(parse_ts("2021-01-01"), parse_ts("2021-01-04")))
        assert len(days) == 3
        assert all(d % DAY == 0 for d in days)


class TestWindow:
    def test_duration(self):
        assert Window(0, 3600).duration == 3600

    def test_contains_half_open(self):
        w = Window(100, 200)
        assert w.contains(100)
        assert w.contains(199)
        assert not w.contains(200)
        assert not w.contains(99)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Window(200, 100)

    def test_overlaps(self):
        assert Window(0, 100).overlaps(Window(50, 150))
        assert not Window(0, 100).overlaps(Window(100, 200))

    def test_intersect(self):
        inter = Window(0, 100).intersect(Window(50, 150))
        assert (inter.start, inter.end) == (50, 100)

    def test_intersect_disjoint_is_empty(self):
        inter = Window(0, 100).intersect(Window(200, 300))
        assert inter.duration == 0

    def test_expand(self):
        w = Window(1000, 2000).expand(before=100, after=200)
        assert (w.start, w.end) == (900, 2200)

    def test_buckets(self):
        w = Window(100, 700)
        assert list(w.buckets()) == [0, 300, 600]

    @given(st.integers(0, 10 ** 6), st.integers(0, 10 ** 6))
    def test_overlap_symmetry(self, a, b):
        w1 = Window(a, a + 500)
        w2 = Window(b, b + 700)
        assert w1.overlaps(w2) == w2.overlaps(w1)


class TestMonthKey:
    def test_basic(self):
        assert month_key(parse_ts("2021-03-15 12:00")) == (2021, 3)

    def test_month_boundary(self):
        assert month_key(parse_ts("2021-04-01") - 1) == (2021, 3)
        assert month_key(parse_ts("2021-04-01")) == (2021, 4)


class TestTimeline:
    def test_paper_window_is_17_months(self):
        assert len(list(Timeline().months())) == 17

    def test_paper_window_days(self):
        # Nov 2020 .. Mar 2022 inclusive: 516 days.
        assert Timeline().n_days == 516

    def test_months_in_order(self):
        months = list(Timeline().months())
        assert months[0] == (2020, 11)
        assert months[-1] == (2022, 3)
        assert sorted(set(months), key=lambda m: (m[0], m[1])) == months

    def test_contains(self):
        timeline = Timeline()
        assert parse_ts("2021-06-15") in timeline
        assert parse_ts("2022-04-01") not in timeline

    def test_clamp(self):
        timeline = Timeline()
        assert timeline.clamp(0) == timeline.start
        assert timeline.clamp(2 ** 40) == timeline.end

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Timeline("2021-01-01", "2020-01-01")
