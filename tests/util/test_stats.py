"""Tests for summary statistics."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    Histogram,
    LogHistogram,
    RunningStats,
    bimodal_modes,
    describe,
    gini,
    mean,
    median,
    pearson,
    percentile,
    ratio,
    spearman,
)

FLOATS = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.n == 0
        assert stats.variance == 0.0

    def test_single_value(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.min == stats.max == 5.0

    @given(st.lists(FLOATS, min_size=1, max_size=200))
    def test_matches_batch_computation(self, values):
        stats = RunningStats()
        for v in values:
            stats.add(v)
        assert stats.n == len(values)
        assert stats.mean == pytest.approx(sum(values) / len(values), abs=1e-6, rel=1e-6)
        assert stats.min == min(values)
        assert stats.max == max(values)

    @given(st.lists(FLOATS, min_size=1, max_size=100),
           st.lists(FLOATS, min_size=1, max_size=100))
    def test_merge_equals_combined(self, a, b):
        left = RunningStats()
        for v in a:
            left.add(v)
        right = RunningStats()
        for v in b:
            right.add(v)
        left.merge(right)
        combined = RunningStats()
        for v in a + b:
            combined.add(v)
        assert left.n == combined.n
        assert left.mean == pytest.approx(combined.mean, abs=1e-6, rel=1e-6)
        assert left.variance == pytest.approx(combined.variance, abs=1e-3, rel=1e-3)

    def test_merge_empty_is_noop(self):
        stats = RunningStats()
        stats.add(1.0)
        stats.merge(RunningStats())
        assert stats.n == 1


class TestPearson:
    def test_perfect_positive(self):
        xs = [1, 2, 3, 4, 5]
        ys = [2, 4, 6, 8, 10]
        assert pearson(xs, ys) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = random.Random(5)
        xs = [rng.random() for _ in range(5000)]
        ys = [rng.random() for _ in range(5000)]
        assert abs(pearson(xs, ys)) < 0.05

    def test_degenerate_constant(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_too_short(self):
        assert pearson([1], [2]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1])

    @given(st.lists(st.tuples(FLOATS, FLOATS), min_size=2, max_size=100))
    def test_bounded(self, pairs):
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        assert -1.0 - 1e-9 <= pearson(xs, ys) <= 1.0 + 1e-9


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        xs = [1, 2, 3, 4, 5]
        ys = [math.exp(x) for x in xs]
        assert spearman(xs, ys) == pytest.approx(1.0)

    def test_ties_handled(self):
        assert -1.0 <= spearman([1, 1, 2, 2], [3, 3, 4, 4]) <= 1.0


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5.0

    def test_extremes(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(FLOATS, min_size=1, max_size=100),
           st.floats(min_value=0, max_value=100))
    def test_within_bounds(self, values, p):
        result = percentile(values, p)
        assert min(values) <= result <= max(values)

    def test_median_helper(self):
        assert median([1, 2, 3]) == 2


class TestRatioAndMean:
    def test_ratio(self):
        assert ratio(1, 4) == 0.25

    def test_ratio_zero_denominator(self):
        assert ratio(1, 0) == 0.0

    def test_mean_empty(self):
        assert mean([]) == 0.0


class TestHistogram:
    def test_basic_binning(self):
        hist = Histogram(0, 10, 10)
        hist.add(0.5)
        hist.add(9.5)
        assert hist.counts[0] == 1
        assert hist.counts[9] == 1

    def test_underflow_overflow(self):
        hist = Histogram(0, 10, 5)
        hist.add(-1)
        hist.add(10)
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert hist.total == 2

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            Histogram(10, 0, 5)

    def test_nan_counted_not_binned(self):
        hist = Histogram(0, 10, 5)
        hist.add(float("nan"))
        hist.add(float("nan"), weight=3)
        assert hist.nan == 4
        assert hist.underflow == 0 and hist.overflow == 0
        assert all(c == 0 for c in hist.counts)
        assert hist.total == 4

    def test_infinities_are_under_overflow(self):
        hist = Histogram(0, 10, 5)
        hist.add(float("inf"))
        hist.add(float("-inf"))
        assert hist.overflow == 1
        assert hist.underflow == 1
        assert hist.nan == 0
        assert hist.total == 2

    @given(st.lists(st.floats(allow_nan=True, allow_infinity=True),
                    max_size=100))
    def test_total_conserved_with_nonfinite(self, values):
        hist = Histogram(0, 10, 5)
        for v in values:
            hist.add(v)
        assert hist.total == len(values)

    def test_modes(self):
        hist = Histogram(0, 10, 10)
        for _ in range(5):
            hist.add(2.5)
        for _ in range(3):
            hist.add(7.5)
        modes = hist.modes(2)
        assert modes[0] == pytest.approx(2.5)
        assert modes[1] == pytest.approx(7.5)

    @given(st.lists(st.floats(min_value=0, max_value=9.99), max_size=100))
    def test_total_conserved(self, values):
        hist = Histogram(0, 10, 7)
        for v in values:
            hist.add(v)
        assert hist.total == len(values)


class TestLogHistogram:
    def test_decades(self):
        hist = LogHistogram()
        hist.add(5)       # decade 0
        hist.add(50)      # decade 1
        hist.add(5000)    # decade 3
        assert dict(hist.items()) == {0: 1, 1: 1, 3: 1}

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LogHistogram().add(0)

    def test_share(self):
        hist = LogHistogram()
        hist.add(5)
        hist.add(50)
        assert hist.share(0) == 0.5


class TestBimodalModes:
    def test_detects_two_modes(self):
        rng = random.Random(11)
        low = [rng.lognormvariate(math.log(50), 0.2) for _ in range(400)]
        high = [rng.lognormvariate(math.log(6000), 0.2) for _ in range(400)]
        modes = bimodal_modes(low + high)
        assert len(modes) == 2
        assert 20 < modes[0] < 150
        assert 2500 < modes[1] < 15000

    def test_single_mode(self):
        rng = random.Random(11)
        data = [rng.lognormvariate(math.log(100), 0.1) for _ in range(500)]
        modes = bimodal_modes(data)
        assert len(modes) >= 1
        assert 50 < modes[0] < 200

    def test_empty(self):
        assert bimodal_modes([]) == []

    def test_constant(self):
        assert bimodal_modes([5.0] * 10) == [5.0]


class TestGini:
    def test_equal_distribution(self):
        assert gini([1, 1, 1, 1]) == pytest.approx(0.0)

    def test_total_concentration(self):
        assert gini([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_empty(self):
        assert gini([]) == 0.0


class TestDescribe:
    def test_empty(self):
        assert describe([])["n"] == 0

    def test_fields(self):
        stats = describe([1.0, 2.0, 3.0])
        assert stats["n"] == 3
        assert stats["mean"] == 2.0
        assert stats["p50"] == 2.0
