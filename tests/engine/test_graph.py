"""Graph validation: the ISSUE's structural-safety contract.

Every malformed declaration fails at graph-*build* time — cycles are
named, unknown inputs are rejected before anything runs — and the
topological order is deterministic across runs and processes.
"""

import pytest

from repro.engine import (
    CycleError,
    DuplicateNodeError,
    Phase,
    PhaseGraph,
    UnknownInputError,
)


def _phase(name, inputs=(), provides=None, **kw):
    return Phase(name, compute=lambda ctx, **inputs: name,
                 inputs=inputs, provides=provides, **kw)


class TestPhaseDeclaration:
    def test_rejects_missing_compute(self):
        with pytest.raises(ValueError, match="declares no compute"):
            Phase("nameless")

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty name"):
            Phase("", compute=lambda ctx: None)

    def test_provides_defaults_to_name(self):
        assert _phase("a").provides == "a"
        assert _phase("a", provides="out").provides == "out"


class TestValidation:
    def test_unknown_input_raises_at_build_time(self):
        with pytest.raises(UnknownInputError,
                           match=r"phase 'b' consumes 'ghost'"):
            PhaseGraph([_phase("a"), _phase("b", inputs=("ghost",))])

    def test_sources_satisfy_inputs(self):
        graph = PhaseGraph([_phase("b", inputs=("seed",))],
                           sources=("seed",))
        assert [p.name for p in graph.order] == ["b"]

    def test_duplicate_name_raises(self):
        with pytest.raises(DuplicateNodeError, match="duplicate phase name"):
            PhaseGraph([_phase("a"), _phase("a")])

    def test_duplicate_slot_raises(self):
        with pytest.raises(DuplicateNodeError,
                           match=r"slot 'out' is provided by both"):
            PhaseGraph([_phase("a", provides="out"),
                        _phase("b", provides="out")])

    def test_phase_shadowing_a_source_raises(self):
        with pytest.raises(DuplicateNodeError, match="shadows"):
            PhaseGraph([_phase("a", provides="seed")], sources=("seed",))

    def test_cycle_raises_with_the_cycle_named(self):
        with pytest.raises(CycleError) as err:
            PhaseGraph([
                _phase("a", inputs=("c",)),
                _phase("b", inputs=("a",)),
                _phase("c", inputs=("b",)),
            ])
        # The cycle's members, in dependency order, are all named.
        assert set(err.value.cycle) == {"a", "b", "c"}
        assert "->" in str(err.value)

    def test_self_cycle_raises(self):
        with pytest.raises(CycleError) as err:
            PhaseGraph([_phase("a", inputs=("a",))])
        assert err.value.cycle == ("a",)

    def test_cycle_below_valid_prefix_is_still_found(self):
        with pytest.raises(CycleError) as err:
            PhaseGraph([
                _phase("ok"),
                _phase("x", inputs=("ok", "y")),
                _phase("y", inputs=("x",)),
            ])
        assert set(err.value.cycle) == {"x", "y"}


class TestDeterministicOrder:
    PHASES = [
        ("sink", ("left", "right")),
        ("left", ("root",)),
        ("right", ("root",)),
        ("root", ()),
    ]

    def _build(self):
        return PhaseGraph([_phase(n, inputs=i) for n, i in self.PHASES])

    def test_order_is_topological(self):
        order = [p.name for p in self._build().order]
        assert order.index("root") < order.index("left")
        assert order.index("root") < order.index("right")
        assert order.index("left") < order.index("sink")
        assert order.index("right") < order.index("sink")

    def test_order_is_identical_across_builds(self):
        orders = {tuple(p.name for p in self._build().order)
                  for _ in range(20)}
        assert len(orders) == 1

    def test_declaration_order_breaks_ties(self):
        # left and right are both ready after root; left is declared
        # first among the ready set, so it always runs first.
        order = [p.name for p in self._build().order]
        assert order == ["root", "left", "right", "sink"]


class TestQueries:
    def _diamond(self):
        return PhaseGraph([
            _phase("root"),
            _phase("left", inputs=("root",)),
            _phase("right", inputs=("root",)),
            _phase("sink", inputs=("left", "right")),
        ])

    def test_subset_runs_only_ancestors(self):
        graph = self._diamond()
        assert [p.name for p in graph.subset(["left"])] == ["root", "left"]
        assert [p.name for p in graph.subset(["sink"])] == \
            ["root", "left", "right", "sink"]

    def test_subset_unknown_target_raises(self):
        with pytest.raises(KeyError, match="ghost"):
            self._diamond().subset(["ghost"])

    def test_edges_match_declared_inputs(self):
        graph = self._diamond()
        assert set(graph.edges()) == {
            ("root", "left", "root"),
            ("root", "right", "root"),
            ("left", "sink", "left"),
            ("right", "sink", "right"),
        }

    def test_render_text_lists_every_phase_once(self):
        text = self._diamond().render_text()
        for name in ("root", "left", "right", "sink"):
            assert sum(1 for line in text.splitlines()
                       if line.strip().startswith(f"{name} ")) == 1

    def test_to_dot_has_every_node_and_edge(self):
        dot = self._diamond().to_dot()
        assert dot.startswith("digraph")
        for name in ("root", "left", "right", "sink"):
            assert f'"{name}" [shape=' in dot
        assert '"root" -> "left"' in dot
        assert '"left" -> "sink"' in dot
