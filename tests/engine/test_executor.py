"""Executor + middleware semantics, on synthetic graphs.

The span middleware traces every traced node (and only those), the
cache middleware skips computes on hits and saves on misses, the
worker policy forces parallel phases serial with a warning, and
disabled phases fall back untraced and uncached.
"""

import pytest

from repro.artifacts.store import ArtifactStore
from repro.artifacts.cache import PhaseCache
from repro.engine import (
    CacheMiddleware,
    Executor,
    Phase,
    PhaseGraph,
    RunContext,
    SpanMiddleware,
    WorkerPolicy,
    cached_analysis,
)
from repro.obs import RunTelemetry


def _graph():
    return PhaseGraph([
        Phase("double", compute=lambda ctx, seed: seed * 2,
              inputs=("seed",)),
        Phase("plus", compute=lambda ctx, double: double + 1,
              inputs=("double",),
              annotations=lambda result, ctx: {"value": result}),
        Phase("quiet", compute=lambda ctx, plus: plus, inputs=("plus",),
              traced=False),
    ], sources=("seed",))


class TestExecution:
    def test_values_flow_through_slots(self):
        values = Executor(_graph()).run(RunContext(), sources={"seed": 5})
        assert values["double"] == 10
        assert values["plus"] == 11
        assert values["quiet"] == 11

    def test_targets_run_only_ancestors(self):
        ran = []
        graph = PhaseGraph([
            Phase("a", compute=lambda ctx: ran.append("a")),
            Phase("b", compute=lambda ctx, a: ran.append("b"),
                  inputs=("a",)),
            Phase("c", compute=lambda ctx: ran.append("c")),
        ])
        Executor(graph).run(RunContext(), targets=["b"])
        assert ran == ["a", "b"]

    def test_missing_source_value_raises(self):
        with pytest.raises(KeyError, match="missing input value"):
            Executor(_graph()).run(RunContext())

    def test_undeclared_source_rejected(self):
        with pytest.raises(KeyError, match="not a declared source"):
            Executor(_graph()).run(RunContext(), sources={"ghost": 1})

    def test_disabled_phase_uses_fallback(self):
        graph = PhaseGraph([
            Phase("maybe", compute=lambda ctx: "computed",
                  enabled=lambda ctx: ctx.params.get("on", False),
                  fallback=lambda ctx: "fallback"),
        ])
        assert Executor(graph).run(RunContext())["maybe"] == "fallback"
        assert Executor(graph).run(
            RunContext(params={"on": True}))["maybe"] == "computed"


class TestSpanMiddleware:
    def _run(self, telemetry):
        ctx = RunContext(telemetry=telemetry)
        Executor(_graph(), middleware=(SpanMiddleware(),)).run(
            ctx, sources={"seed": 3}, root_span="root",
            root_meta={"k": "v"})

    def test_span_tree_mirrors_traced_phases(self):
        telemetry = RunTelemetry.create()
        self._run(telemetry)
        roots = telemetry.tracer.roots
        assert [r.name for r in roots] == ["root"]
        assert roots[0].meta == {"k": "v"}
        assert [c.name for c in roots[0].children] == ["double", "plus"]

    def test_annotations_applied_from_results(self):
        telemetry = RunTelemetry.create()
        self._run(telemetry)
        plus = telemetry.tracer.roots[0].children[1]
        assert plus.meta == {"value": 7}

    def test_disabled_phase_is_untraced(self):
        telemetry = RunTelemetry.create()
        graph = PhaseGraph([
            Phase("maybe", compute=lambda ctx: 1,
                  enabled=lambda ctx: False, fallback=lambda ctx: 2),
        ])
        ctx = RunContext(telemetry=telemetry)
        Executor(graph, middleware=(SpanMiddleware(),)).run(ctx)
        assert telemetry.tracer.roots == []


class TestCacheMiddleware:
    @pytest.fixture()
    def cache(self, tmp_path):
        return PhaseCache(ArtifactStore(str(tmp_path)))

    def _graph(self, ran):
        import json

        serializer = (lambda v: json.dumps(v).encode(),
                      lambda b: json.loads(b.decode()))
        return PhaseGraph([
            Phase("work", compute=lambda ctx: ran.append("work") or [1, 2],
                  cache_key="work", serializer=serializer),
        ])

    def test_miss_computes_and_saves_then_hit_skips(self, cache):
        ran = []
        graph = self._graph(ran)
        keys = {"work": "ab" * 32}
        mw = (SpanMiddleware(), CacheMiddleware(cache, keys))
        ctx1 = RunContext(telemetry=RunTelemetry.create())
        v1 = Executor(graph, middleware=mw).run(ctx1)["work"]
        ctx2 = RunContext(telemetry=RunTelemetry.create())
        v2 = Executor(graph, middleware=mw).run(ctx2)["work"]
        assert ran == ["work"]  # second run never computed
        assert v1 == v2 == [1, 2]
        assert ctx1.cached_phases == set()
        assert ctx2.cached_phases == {"work"}

    def test_hit_annotates_the_span_cached(self, cache):
        graph = self._graph([])
        keys = {"work": "cd" * 32}
        mw = (SpanMiddleware(), CacheMiddleware(cache, keys))
        Executor(graph, middleware=mw).run(RunContext())
        telemetry = RunTelemetry.create()
        Executor(graph, middleware=mw).run(RunContext(telemetry=telemetry))
        span = telemetry.tracer.roots[0]
        assert span.meta.get("cached") is True

    def test_uncacheable_phase_passes_through(self, cache):
        ran = []
        graph = PhaseGraph([
            Phase("plain", compute=lambda ctx: ran.append(1) or "x"),
        ])
        mw = (CacheMiddleware(cache, {"plain": "ee" * 32}),)
        Executor(graph, middleware=mw).run(RunContext())
        Executor(graph, middleware=mw).run(RunContext())
        assert len(ran) == 2  # no cache_key declared -> never cached

    def test_no_cache_is_a_noop(self):
        ran = []
        graph = self._graph(ran)
        mw = (CacheMiddleware(None, {"work": "ff" * 32}),)
        Executor(graph, middleware=mw).run(RunContext())
        Executor(graph, middleware=mw).run(RunContext())
        assert len(ran) == 2


class TestWorkerPolicy:
    def _graph(self, seen):
        return PhaseGraph([
            Phase("shard",
                  compute=lambda ctx: seen.append(ctx.params["n_workers"]),
                  parallel=True),
            Phase("serialish", compute=lambda ctx: None),
        ])

    def test_serial_policy_forces_one_worker_and_warns(self):
        seen, warned = [], []
        mw = (WorkerPolicy(serial=True, warn=lambda: warned.append(1)),)
        ctx = RunContext(params={"n_workers": 4})
        Executor(self._graph(seen), middleware=mw).run(ctx)
        assert seen == [1]
        assert warned == [1]

    def test_serial_policy_is_quiet_at_one_worker(self):
        seen, warned = [], []
        mw = (WorkerPolicy(serial=True, warn=lambda: warned.append(1)),)
        Executor(self._graph(seen), middleware=mw).run(
            RunContext(params={"n_workers": 1}))
        assert seen == [1] and warned == []

    def test_parallel_allowed_when_not_serial(self):
        seen = []
        mw = (WorkerPolicy(serial=False, warn=None),)
        Executor(self._graph(seen), middleware=mw).run(
            RunContext(params={"n_workers": 4}))
        assert seen == [4]


class TestCachedAnalysis:
    class Thing:
        def __init__(self, telemetry):
            self.telemetry = telemetry
            self.base = 10
            self.calls = 0

        @cached_analysis(deps=("base",))
        def doubled(self):
            """Twice the base."""
            self.calls += 1
            return self.base * 2

    def test_memoizes_and_spans_once(self):
        telemetry = RunTelemetry.create()
        thing = self.Thing(telemetry)
        assert thing.doubled == 20
        assert thing.doubled == 20
        assert thing.calls == 1
        roots = [r.name for r in telemetry.tracer.roots]
        assert roots.count("analysis.doubled") == 1

    def test_declares_an_engine_node(self):
        desc = self.Thing.__dict__["doubled"]
        phase = desc.phase()
        assert phase.name == "analysis.doubled"
        assert phase.inputs == ("base",)
        assert phase.doc == "Twice the base."
