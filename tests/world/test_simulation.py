"""Tests for world assembly and query-time behaviour."""

import pytest

from repro.dns.name import DomainName
from repro.dns.rr import RRType
from repro.net.ip import ip_to_str, parse_ip, slash24_of
from repro.util.timeutil import DAY, parse_ts
from repro.world.config import WorldConfig
from repro.world.simulation import SPECIAL_TARGETS, AttackIndex, build_world


class TestWorldAssembly:
    def test_population_size(self, tiny_world, tiny_config):
        # Generated domains + the scripted scenario domains.
        assert len(tiny_world.directory) >= tiny_config.n_domains

    def test_every_ns_ip_registered(self, tiny_world):
        unknown = [ip for ip in tiny_world.directory.nameserver_ips()
                   if ip not in tiny_world.nameservers_by_ip]
        assert unknown == []

    def test_special_targets_registered(self, tiny_world):
        for text, label, _, answers, _, _ in SPECIAL_TARGETS:
            ns = tiny_world.nameservers_by_ip[parse_ip(text)]
            assert ns.is_misconfig_target
            assert ns.answers_queries == answers

    def test_google_dns_attributed_to_google(self, tiny_world):
        asn = tiny_world.internet.origin_asn(parse_ip("8.8.8.8"))
        assert tiny_world.as2org.name_of(asn) == "Google"

    def test_open_resolver_set(self, tiny_world):
        assert parse_ip("8.8.8.8") in tiny_world.open_resolver_ips
        assert parse_ip("204.79.197.200") not in tiny_world.open_resolver_ips

    def test_census_covers_anycast(self, tiny_world):
        snap = tiny_world.census.snapshots[0]
        anycast_s24s = {slash24_of(ip) for ip in tiny_world.anycast_ips()}
        assert snap.anycast_slash24s <= anycast_s24s

    def test_scenario_providers_installed(self, tiny_world):
        assert "Russian MoD" in tiny_world.providers
        assert "RZD" in tiny_world.providers
        assert tiny_world.directory.get_by_name("mil.ru") is not None
        assert tiny_world.directory.get_by_name("rzd.ru") is not None

    def test_milru_single_slash24(self, tiny_world):
        mod = tiny_world.providers["Russian MoD"]
        assert len(mod.slash24s) == 1
        assert len(mod.nameservers) == 3

    def test_rzd_two_slash24s(self, tiny_world):
        rzd = tiny_world.providers["RZD"]
        assert len(rzd.slash24s) == 2

    def test_link_capacities_only_unicast(self, tiny_world):
        for s24 in tiny_world.link_capacity:
            members = [ns for ns in tiny_world.nameservers_by_ip.values()
                       if ns.nsid.slash24 == s24]
            assert any(ns.anycast is None for ns in members)

    def test_deterministic_build(self, tiny_config):
        a = build_world(tiny_config)
        b = build_world(tiny_config)
        assert sorted(a.nameservers_by_ip) == sorted(b.nameservers_by_ip)
        assert len(a.attacks) == len(b.attacks)
        assert [(x.victim_ip, x.window.start) for x in a.attacks] == \
            [(x.victim_ip, x.window.start) for x in b.attacks]

    def test_no_scenarios_flag(self, tiny_config):
        world = build_world(tiny_config, install_scenarios=False)
        assert "Russian MoD" not in world.providers
        transip_ips = world.providers["TransIP"].ns_ips
        # No scripted TransIP campaign in the schedule.
        march_attack = [a for a in world.attacks
                        if a.victim_ip in transip_ips
                        and a.window.start == parse_ts("2021-03-01 19:00")]
        assert march_attack == []


class TestTransport:
    def test_unknown_ip_dropped(self, tiny_world):
        reply = tiny_world.transport(parse_ip("203.0.113.99"),
                                     DomainName("x.com"), RRType.NS, 0)
        assert not reply.answered

    def test_public_resolver_answers(self, tiny_world):
        reply = tiny_world.transport(parse_ip("8.8.8.8"),
                                     DomainName("x.com"), RRType.NS,
                                     tiny_world.timeline.start)
        assert reply.answered

    def test_dead_target_never_answers(self, tiny_world):
        reply = tiny_world.transport(parse_ip("192.168.12.34"),
                                     DomainName("x.com"), RRType.NS,
                                     tiny_world.timeline.start)
        assert not reply.answered

    def test_quiet_server_answers_fast(self, tiny_world):
        provider = tiny_world.providers["Euskaltel"]
        ns = provider.nameservers[0]
        quiet_ts = parse_ts("2021-03-25 12:00")
        replies = [tiny_world.transport(ns.ip, DomainName("x.com"),
                                        RRType.NS, quiet_ts)
                   for _ in range(50)]
        assert all(r.answered for r in replies)
        mean = sum(r.rtt_ms for r in replies) / len(replies)
        assert mean < ns.base_rtt_ms + 10


class TestLoadModel:
    def test_transip_march_load(self, tiny_world):
        transip = tiny_world.providers["TransIP"]
        a = transip.nameservers[0]
        load = tiny_world.load_at(a, parse_ts("2021-03-01 20:00"))
        # 710 Kpps TCP SYN on a 50 Kpps server: u ~ 14.
        assert 10 < load.server_util < 20
        assert not load.blackout

    def test_quiet_after_attack(self, tiny_world):
        transip = tiny_world.providers["TransIP"]
        a = transip.nameservers[0]
        load = tiny_world.load_at(a, parse_ts("2021-03-20 12:00"))
        assert load.quiet

    def test_anycast_dilution(self, tiny_world):
        # Same attack rate on a mega-anycast NS yields far lower site
        # utilization than on a unicast NS of similar size.
        cloudflare = tiny_world.providers["Cloudflare"]
        ns = cloudflare.nameservers[0]
        share, site_cap = tiny_world._vantage_site[ns.ip]
        assert share < 0.5

    def test_attack_index_day_padding(self, tiny_world):
        transip = tiny_world.providers["TransIP"]
        nsset_ids = tiny_world.directory.nssets_of_ip(transip.nameservers[0].ip)
        for nsset_id in nsset_ids:
            dense = tiny_world.dense_days_of(nsset_id)
            if not dense:
                continue
            attack_day = parse_ts("2021-03-01")
            assert attack_day in dense
            assert attack_day + DAY in dense  # recovery margin


class TestAttackIndex:
    def _index(self, attacks, tracked=()):
        index = AttackIndex(tracked)
        for attack in attacks:
            index.add(attack)
        index.freeze()
        return index

    def test_active_on_ip(self):
        from repro.attacks.model import Attack, AttackVector
        from repro.util.timeutil import Window

        attack = Attack(victim_ip=1, window=Window(1000, 2000),
                        vectors=[AttackVector.udp_flood(53, 10.0)])
        index = self._index([attack])
        assert index.active_on_ip(1, 1500) == [attack]
        assert index.active_on_ip(1, 2500) == []
        assert index.active_on_ip(2, 1500) == []

    def test_overlapping_attacks(self):
        from repro.attacks.model import Attack, AttackVector
        from repro.util.timeutil import Window

        a1 = Attack(victim_ip=1, window=Window(0, 5000),
                    vectors=[AttackVector.udp_flood(53, 10.0)])
        a2 = Attack(victim_ip=1, window=Window(1000, 2000),
                    vectors=[AttackVector.udp_flood(80, 10.0)])
        index = self._index([a1, a2])
        assert set(id(a) for a in index.active_on_ip(1, 1500)) == \
            {id(a1), id(a2)}
        assert index.active_on_ip(1, 3000) == [a1]

    def test_slash24_tracking(self):
        from repro.attacks.model import Attack, AttackVector
        from repro.util.timeutil import Window

        attack = Attack(victim_ip=0x0A000005, window=Window(0, 100),
                        vectors=[AttackVector.udp_flood(53, 10.0)])
        tracked = self._index([attack], tracked={0x0A000000})
        assert tracked.active_on_s24(0x0A000000, 50) == [attack]
        untracked = self._index([attack])
        assert untracked.active_on_s24(0x0A000000, 50) == []

    def test_frozen_rejects_add(self):
        index = self._index([])
        from repro.attacks.model import Attack, AttackVector
        from repro.util.timeutil import Window

        with pytest.raises(RuntimeError):
            index.add(Attack(victim_ip=1, window=Window(0, 1),
                             vectors=[AttackVector.udp_flood(53, 1.0)]))
