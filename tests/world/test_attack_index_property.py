"""Property tests: AttackIndex lookups vs a brute-force oracle."""

from hypothesis import given, settings, strategies as st

from repro.attacks.model import Attack, AttackVector, ImpairmentProfile
from repro.util.timeutil import Window
from repro.world.simulation import AttackIndex

VICTIMS = st.integers(min_value=0x0A000000, max_value=0x0A0003FF)
STARTS = st.integers(min_value=0, max_value=10 ** 6)
DURATIONS = st.integers(min_value=60, max_value=100_000)
AFTERMATHS = st.integers(min_value=0, max_value=50_000)

ATTACK = st.builds(
    lambda victim, start, duration, aftermath: Attack(
        victim_ip=victim,
        window=Window(start, start + duration),
        vectors=[AttackVector.udp_flood(53, 100.0)],
        impairment=ImpairmentProfile(
            aftermath_s=aftermath,
            aftermath_load=0.5 if aftermath else 0.0)),
    VICTIMS, STARTS, DURATIONS, AFTERMATHS)


def brute_force_active(attacks, ip, ts):
    return sorted(
        (id(a) for a in attacks
         if a.victim_ip == ip and a.impact_window.contains(ts)))


@settings(max_examples=50, deadline=None)
@given(st.lists(ATTACK, max_size=25),
       st.lists(st.tuples(VICTIMS, STARTS), min_size=1, max_size=20))
def test_active_on_ip_matches_brute_force(attacks, queries):
    index = AttackIndex(tracked_s24s=())
    for attack in attacks:
        index.add(attack)
    index.freeze()
    for ip, ts in queries:
        got = sorted(id(a) for a in index.active_on_ip(ip, ts))
        assert got == brute_force_active(attacks, ip, ts)


@settings(max_examples=50, deadline=None)
@given(st.lists(ATTACK, max_size=25))
def test_day_index_covers_impact_windows(attacks):
    from repro.util.timeutil import DAY, day_start

    index = AttackIndex(tracked_s24s=())
    for attack in attacks:
        index.add(attack)
    index.freeze()
    for attack in attacks:
        window = attack.impact_window
        day = day_start(window.start)
        while day < window.end:
            assert (attack.victim_ip, day) in index.ip_days
            day += DAY


@settings(max_examples=30, deadline=None)
@given(st.lists(ATTACK, max_size=20), VICTIMS, STARTS)
def test_active_on_s24_superset_of_ip(attacks, ip, ts):
    s24 = ip & 0xFFFFFF00
    index = AttackIndex(tracked_s24s={s24})
    for attack in attacks:
        index.add(attack)
    index.freeze()
    on_ip = {id(a) for a in index.active_on_ip(ip, ts)}
    on_s24 = {id(a) for a in index.active_on_s24(s24, ts)}
    assert on_ip <= on_s24
