"""Tests for the scripted case-study scenarios (ground-truth side)."""

import pytest

from repro.net.ports import PORT_DNS
from repro.util.timeutil import HOUR, parse_ts
from repro.world.scenarios import (
    TABLE6_TARGETS,
    TRANSIP_DEC_PPS,
    TRANSIP_MAR_PPS,
    rate_for_drop,
    transip_campaigns,
    russia_campaigns,
)


class TestRateForDrop:
    def test_inverts_overload_drop(self):
        from repro.world.capacity import overload_drop

        capacity = 50_000.0
        for p in (0.2, 0.5, 0.9):
            rate = rate_for_drop(p, capacity, cost_factor=1.0)
            assert overload_drop(rate / capacity, 0.8) == pytest.approx(p)

    def test_cost_factor_divides(self):
        assert rate_for_drop(0.5, 100.0, cost_factor=4.0) == \
            rate_for_drop(0.5, 100.0, cost_factor=1.0) / 4.0

    def test_zero_target(self):
        assert rate_for_drop(0.0, 100.0) == 0.0

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            rate_for_drop(1.0, 100.0)


class TestTransipCampaigns:
    @pytest.fixture(scope="class")
    def campaigns(self, tiny_world):
        return transip_campaigns(tiny_world)

    def test_two_campaigns(self, campaigns):
        assert [c.name for c in campaigns] == [
            "transip-december-2020", "transip-march-2021"]

    def test_december_rates_match_table2(self, campaigns):
        dec = campaigns[0]
        rates = sorted((a.total_pps for a in dec.attacks), reverse=True)
        assert rates == sorted(TRANSIP_DEC_PPS, reverse=True)

    def test_march_six_times_december(self, campaigns):
        dec_peak = max(a.total_pps for a in campaigns[0].attacks)
        mar_peak = max(a.total_pps for a in campaigns[1].attacks)
        # Paper: the telescope observed a peak packet rate ~6x greater.
        assert mar_peak / dec_peak == pytest.approx(125 / 21.8, rel=0.05)

    def test_december_aftermath_eight_hours(self, campaigns):
        heavy = max(campaigns[0].attacks, key=lambda a: a.total_pps)
        assert heavy.impairment.aftermath_s == 8 * HOUR

    def test_march_no_aftermath(self, campaigns):
        for attack in campaigns[1].attacks:
            assert attack.impairment.aftermath_s == 0

    def test_attacker_pools_match_table2(self, campaigns):
        pools = sorted((a.spoof_pool_size for a in campaigns[1].attacks),
                       reverse=True)
        assert pools == [7_000_000, 6_190_000, 823_000]

    def test_three_victims_each(self, campaigns, tiny_world):
        transip_ips = set(tiny_world.providers["TransIP"].ns_ips)
        for campaign in campaigns:
            assert set(campaign.victims) == transip_ips


class TestRussiaCampaigns:
    @pytest.fixture(scope="class")
    def campaigns(self, tiny_world):
        return russia_campaigns(tiny_world)

    def test_milru_eight_days(self, campaigns):
        milru = campaigns[0]
        window = milru.window
        assert window.start == parse_ts("2022-03-11 10:00")
        assert window.end == parse_ts("2022-03-18 20:00")

    def test_milru_blackout_window(self, campaigns):
        attack = campaigns[0].attacks[0]
        blackout = attack.blackout_window()
        assert blackout.start == parse_ts("2022-03-12 00:00")
        assert blackout.end == parse_ts("2022-03-17 06:00")

    def test_milru_telescope_sees_only_modest_vector(self, campaigns):
        attack = campaigns[0].attacks[0]
        assert attack.spoofed_pps < attack.total_pps / 5

    def test_rzd_timing_matches_paper(self, campaigns):
        rzd = campaigns[1]
        window = rzd.window
        assert window.start == parse_ts("2022-03-08 15:30")
        assert window.end == parse_ts("2022-03-08 20:45")

    def test_rzd_blocked_until_six_am(self, campaigns):
        # Overnight blackout ends exactly at 06:00 (§5.2.2); the
        # intermittent phase (aftermath) extends past it.
        attack = campaigns[1].attacks[0]
        blackout = attack.blackout_window()
        assert blackout.start == attack.window.end
        assert blackout.end == parse_ts("2022-03-09 06:00")
        aftermath_end = attack.window.end + attack.impairment.aftermath_s
        assert aftermath_end > blackout.end


class TestTable6Targets:
    def test_targets_match_paper_ladder(self):
        impacts = [impact for _, impact, _ in TABLE6_TARGETS]
        assert impacts == sorted(impacts, reverse=True)
        assert impacts[0] == 348.0 and impacts[-1] == 74.0

    def test_vector_kinds_cover_successful_ports(self):
        # §6.3.1: successful attacks hit 53 most, but port 80 too.
        kinds = [kind for _, _, kind in TABLE6_TARGETS]
        assert kinds.count("tcp80") >= 2
        assert kinds.count("udp53") >= 4

    def test_covers_paper_companies(self):
        names = {name for name, _, _ in TABLE6_TARGETS}
        assert {"NForce B.V.", "Co-Co NL", "Hetzner", "GoDaddy",
                "Linode", "ITandTEL"} <= names

    def test_all_targets_are_providers(self, tiny_world):
        for name, _, _ in TABLE6_TARGETS:
            assert name in tiny_world.providers


class TestCampaignSpoofingVisibility:
    """Per-campaign spoofing mix, and the visibility accounting the
    ``bench_limitations_visibility`` oracle relies on: class membership
    is exactly ``Spoofing.telescope_visible`` over the vectors."""

    @pytest.fixture(scope="class")
    def builders(self, tiny_world):
        from repro.world.scenarios import (failure_case_campaigns,
                                           mega_peak_campaigns,
                                           table6_campaigns)

        return {
            "transip": transip_campaigns(tiny_world),
            "russia": russia_campaigns(tiny_world),
            "failure": failure_case_campaigns(tiny_world),
            "table6": table6_campaigns(tiny_world),
            "mega": mega_peak_campaigns(tiny_world),
        }

    def test_every_campaign_is_telescope_visible(self, builders):
        # Each scripted campaign carries at least one randomly-spoofed
        # vector per attack — the telescope can see all of them.
        for campaigns in builders.values():
            for campaign in campaigns:
                assert campaign.attacks
                for attack in campaign.attacks:
                    assert attack.telescope_visible

    def test_pure_spoofed_campaigns_show_their_full_rate(self, builders):
        for key in ("transip", "failure", "table6", "mega"):
            for campaign in builders[key]:
                for attack in campaign.attacks:
                    assert not attack.is_multi_vector
                    assert attack.spoofed_pps == attack.total_pps

    def test_milru_mixes_visible_and_reflected_vectors(self, builders):
        from repro.attacks.model import Spoofing

        milru, rzd = builders["russia"]
        for attack in milru.attacks:
            spoofings = {v.spoofing for v in attack.vectors}
            assert spoofings == {Spoofing.RANDOM, Spoofing.REFLECTED}
            assert attack.is_multi_vector
            # The severe reflected component is invisible: the darknet
            # sees only the modest randomly-spoofed share.
            assert 0 < attack.spoofed_pps < attack.total_pps
        for attack in rzd.attacks:
            assert attack.spoofed_pps == attack.total_pps

    def test_visibility_class_membership_matches_spoofing(self, builders):
        from repro.core.visibility import _classify

        for campaigns in builders.values():
            for campaign in campaigns:
                for attack in campaign.attacks:
                    name = _classify(attack)
                    if not attack.telescope_visible:
                        assert name == "invisible (reflected/unspoofed)"
                    elif attack.is_multi_vector:
                        assert name == "multi-vector (partially visible)"
                    else:
                        assert name == "randomly spoofed (visible)"

    def test_oracle_accounting_matches_ground_truth(self, tiny_study):
        """The bench_limitations_visibility totals, re-derived: the
        per-class totals in ``analyze_visibility`` must partition the
        schedule exactly as ``Spoofing.telescope_visible`` does."""
        from repro.core.visibility import analyze_visibility

        attacks = tiny_study.world.attacks
        report = analyze_visibility(attacks, tiny_study.feed)
        assert report.n_truth == len(attacks)
        assert sum(total for _, total in report.by_class.values()) \
            == len(attacks)
        n_invisible = sum(1 for a in attacks if not a.telescope_visible)
        n_multi = sum(1 for a in attacks
                      if a.telescope_visible and a.is_multi_vector)
        n_pure = len(attacks) - n_invisible - n_multi
        assert report.by_class.get(
            "invisible (reflected/unspoofed)", (0, 0))[1] == n_invisible
        assert report.by_class.get(
            "multi-vector (partially visible)", (0, 0))[1] == n_multi
        assert report.by_class.get(
            "randomly spoofed (visible)", (0, 0))[1] == n_pure
        # Invisible attacks are (essentially) never detected; visible
        # pure-spoofed ones almost always are — the §4.3 bench gate.
        assert report.class_rate("invisible (reflected/unspoofed)") < 0.05
        assert report.class_rate("randomly spoofed (visible)") > 0.8
