"""Tests for the scenario calibration helpers.

The Table 6 ladder rests on two inversions: ``expected_retry_burn_s``
(drop probability -> answered-query latency) must match the resolver's
actual behaviour, and ``drop_for_impact`` must invert it.
"""

import random

import pytest

from repro.dns.resolver import AgnosticResolver, ResolverConfig
from repro.dns.rr import RRType
from repro.dns.server import ServerReply
from repro.world.scenarios import drop_for_impact, expected_retry_burn_s


def measured_burn(p: float, n: int = 15000, base_rtt: float = 10.0) -> float:
    """Empirical mean extra latency of answered queries at loss ``p``."""
    loss_rng = random.Random(11)

    def transport(ns_ip, qname, qtype, ts):
        if loss_rng.random() < p:
            return ServerReply.dropped()
        return ServerReply.ok(base_rtt)

    resolver = AgnosticResolver(transport, random.Random(5), ResolverConfig())
    total = 0.0
    count = 0
    for _ in range(n):
        result = resolver.resolve("x.com", RRType.NS, [1, 2], when=0)
        if result.status.name == "OK":
            total += result.rtt_ms - base_rtt
            count += 1
    return total / count / 1000.0


class TestExpectedRetryBurn:
    @pytest.mark.parametrize("p", [0.0, 0.3, 0.5, 0.7])
    def test_matches_resolver_simulation(self, p):
        predicted = expected_retry_burn_s(p)
        measured = measured_burn(p)
        assert measured == pytest.approx(predicted, abs=0.08, rel=0.05)

    def test_monotone(self):
        values = [expected_retry_burn_s(p / 20) for p in range(19)]
        assert values == sorted(values)

    def test_zero_loss_zero_burn(self):
        assert expected_retry_burn_s(0.0) == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            expected_retry_burn_s(1.0)
        with pytest.raises(ValueError):
            expected_retry_burn_s(-0.1)

    def test_saturates_at_ladder_mean(self):
        # As p -> 1 every answered query is a survivor of the full
        # backoff ladder; the answered-conditional mean approaches the
        # unweighted ladder mean (0 + 1.5 + 4.5 + 10.5) / 4.
        assert expected_retry_burn_s(0.94) < 4.125
        assert expected_retry_burn_s(0.94) > 3.5


class TestDropForImpact:
    def test_inverts_burn(self):
        for target in (10.0, 50.0, 150.0, 300.0):
            baseline_ms = 12.0
            p = drop_for_impact(target, baseline_ms)
            achieved = 1.0 + expected_retry_burn_s(p) * 1000.0 / baseline_ms
            assert achieved == pytest.approx(target, rel=0.02)

    def test_monotone_in_target(self):
        ps = [drop_for_impact(t, 10.0) for t in (5, 20, 80, 200)]
        assert ps == sorted(ps)

    def test_monotone_in_baseline(self):
        # A higher baseline needs less loss for the same impact factor...
        assert drop_for_impact(50.0, 50.0) > drop_for_impact(50.0, 5.0)

    def test_trivial_targets(self):
        assert drop_for_impact(1.0, 10.0) == 0.0
        assert drop_for_impact(0.5, 10.0) == 0.0
        assert drop_for_impact(100.0, 0.0) == 0.0

    def test_unreachable_target_saturates(self):
        # 4.125 s max burn / 1 ms baseline ~ 4,126x ceiling.
        assert drop_for_impact(100_000.0, 10.0) == 0.95
