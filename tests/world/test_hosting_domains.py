"""Tests for providers, deployment profiles, and the domain population."""

import random

import pytest

from repro.net.ip import slash24_of
from repro.topology.generator import TopologyConfig, generate_topology
from repro.world.domains import (
    DomainDirectory,
    MisconfigTarget,
    NSSetRegistry,
    build_population,
)
from repro.world.hosting import (
    DeploymentProfile,
    ProfileKind,
    build_analog_providers,
    build_filler_providers,
    build_provider,
    build_selfhosted_providers,
)


@pytest.fixture(scope="module")
def gen():
    return generate_topology(random.Random(4), TopologyConfig(n_filler_orgs=12))


@pytest.fixture(scope="module")
def providers(gen):
    rng = random.Random(5)
    out = build_analog_providers(gen, rng)
    out += build_filler_providers(gen, rng, 10, 1.05)
    out += build_selfhosted_providers(gen, rng, 15)
    return out


class TestDeploymentProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeploymentProfile(ProfileKind.SELF_HOSTED, n_nameservers=0,
                              n_prefixes=1)
        with pytest.raises(ValueError):
            DeploymentProfile(ProfileKind.SELF_HOSTED, n_nameservers=2,
                              n_prefixes=3)
        with pytest.raises(ValueError):
            DeploymentProfile(ProfileKind.SELF_HOSTED, n_nameservers=2,
                              n_prefixes=2, n_asns=3)

    def test_anycast_flags(self):
        full = DeploymentProfile(ProfileKind.MEGA_ANYCAST, n_nameservers=2,
                                 n_prefixes=2, anycast_sites=10, anycast_ns=2)
        assert full.is_anycast and not full.is_partial_anycast
        partial = DeploymentProfile(ProfileKind.PARTIAL_ANYCAST,
                                    n_nameservers=3, n_prefixes=3,
                                    anycast_sites=5, anycast_ns=1)
        assert partial.is_partial_anycast and not partial.is_anycast


class TestBuildProvider:
    def test_transip_shape(self, providers):
        transip = next(p for p in providers if p.name == "TransIP")
        # Paper §5.1.1: three unicast NS, three /24s, one ASN.
        assert len(transip.nameservers) == 3
        assert len(transip.slash24s) == 3
        assert len(set(transip.asns)) == 1
        assert all(ns.anycast is None for ns in transip.nameservers)

    def test_mega_anycast_shape(self, providers):
        cloudflare = next(p for p in providers if p.name == "Cloudflare")
        assert all(ns.anycast is not None for ns in cloudflare.nameservers)
        assert cloudflare.nameservers[0].anycast.n_sites == 30

    def test_partial_anycast_mixed(self, providers):
        ovh = next(p for p in providers if p.name == "OVH")
        kinds = [ns.anycast is not None for ns in ovh.nameservers]
        assert any(kinds) and not all(kinds)

    def test_ns_ips_unique_across_providers(self, providers):
        ips = [ip for p in providers for ip in p.ns_ips]
        assert len(ips) == len(set(ips))

    def test_ns_ips_inside_provider_asn(self, gen, providers):
        for provider in providers[:10]:
            for ns in provider.nameservers:
                assert gen.internet.origin_asn(ns.ip) in provider.asns

    def test_prefix_spread(self, providers):
        # A multi-prefix provider's nameservers occupy distinct /24s.
        hetzner = next(p for p in providers if p.name == "Hetzner")
        s24s = {slash24_of(ns.ip) for ns in hetzner.nameservers}
        assert len(s24s) == hetzner.profile.n_prefixes

    def test_selfhosted_single_prefix(self, providers):
        selfhost = [p for p in providers if p.name.startswith("SelfHost")]
        assert selfhost
        for provider in selfhost:
            assert len(provider.slash24s) == 1

    def test_nameserver_rtt_reflects_country(self, providers):
        transip = next(p for p in providers if p.name == "TransIP")   # NL
        linode = next(p for p in providers if p.name == "Linode")     # US
        nl_rtt = transip.nameservers[0].base_rtt_ms
        us_rtt = min(ns.base_rtt_ms for ns in linode.nameservers
                     if ns.anycast is None)
        assert nl_rtt < us_rtt

    def test_slug(self, providers):
        nforce = next(p for p in providers if p.name == "NForce B.V.")
        assert nforce.slug == "nforce-b-v"

    def test_rejects_insufficient_ases(self, gen):
        profile = DeploymentProfile(ProfileKind.SELF_HOSTED, n_nameservers=2,
                                    n_prefixes=2, n_asns=2)
        asys = gen.filler_as[0]
        with pytest.raises(ValueError):
            build_provider(gen.internet, random.Random(1), "X",
                           asys.org, [asys], profile, 1.0)


class TestNSSetRegistry:
    def test_interning(self):
        registry = NSSetRegistry()
        a = registry.intern([3, 1, 2])
        b = registry.intern((1, 2, 3))
        assert a == b
        assert registry.ips_of(a) == (1, 2, 3)

    def test_deduplicates_ips(self):
        registry = NSSetRegistry()
        nsset_id = registry.intern([1, 1, 2])
        assert registry.ips_of(nsset_id) == (1, 2)

    def test_distinct_sets_distinct_ids(self):
        registry = NSSetRegistry()
        assert registry.intern([1]) != registry.intern([2])
        assert len(registry) == 2


class TestBuildPopulation:
    @pytest.fixture(scope="class")
    def directory(self, providers):
        targets = [MisconfigTarget(ip=0x08080808, label="google-dns", weight=1.0)]
        return build_population(
            random.Random(6), providers, 3000, targets,
            misconfig_fraction=0.01, multi_provider_fraction=0.08,
            secondary_pool=("nic.ru", "GoDaddy"))

    def test_population_size(self, directory):
        assert len(directory) == 3000

    def test_unique_names(self, directory):
        names = [d.name for d in directory.domains]
        assert len(names) == len(set(names))

    def test_zipf_concentration(self, directory):
        # The biggest provider hosts far more than the median one.
        from collections import Counter
        counts = Counter(d.provider_name for d in directory.domains)
        ordered = sorted(counts.values(), reverse=True)
        assert ordered[0] > 10 * ordered[len(ordered) // 2]

    def test_misconfig_fraction(self, directory):
        misconfig = [d for d in directory.domains if d.misconfig]
        assert 10 < len(misconfig) < 70  # ~1% of 3000
        for record in misconfig:
            assert record.delegation.nameserver_ips == (0x08080808,)

    def test_multi_provider_nssets(self, directory):
        multi = [d for d in directory.domains if d.secondary_provider]
        assert multi
        for record in multi[:20]:
            assert record.secondary_provider != record.provider_name
            # Secondary adds nameservers beyond the primary's.
            assert len(record.delegation.nameserver_ips) > 2

    def test_transip_nl_concentration(self, directory):
        transip = [d for d in directory.domains
                   if d.provider_name == "TransIP" and not d.misconfig]
        if len(transip) >= 20:
            nl = sum(1 for d in transip if d.tld == "nl")
            assert nl / len(transip) > 0.4  # configured 0.66 +- noise

    def test_third_party_web_only_transip(self, directory):
        flagged = {d.provider_name for d in directory.domains
                   if d.third_party_web}
        assert flagged <= {"TransIP"}

    def test_indexes_consistent(self, directory):
        for record in directory.domains[:200]:
            for ip in record.delegation.nameserver_ips:
                assert record.domain_id in directory.domains_of_ip(ip)
            assert record.domain_id in directory.domains_of_nsset(record.nsset_id)

    def test_nssets_of_ip(self, directory):
        record = next(d for d in directory.domains if not d.misconfig)
        ip = record.delegation.nameserver_ips[0]
        assert record.nsset_id in directory.nssets_of_ip(ip)

    def test_get_by_name(self, directory):
        record = directory.domains[0]
        assert directory.get_by_name(str(record.name)) is record
        assert directory.get_by_name("nonexistent.example") is None

    def test_duplicate_add_rejected(self, directory, providers):
        record = directory.domains[0]
        with pytest.raises(ValueError):
            directory.add(record.name, providers[0], record.delegation)

    def test_nsset_sizes(self, directory):
        sizes = directory.nsset_sizes()
        assert sum(sizes.values()) == len(directory)
