"""Tests for the load/drop/delay capacity model."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.dns.rcode import Rcode
from repro.net.ports import PORT_DNS, PORT_HTTP, PROTO_TCP, PROTO_UDP
from repro.world.capacity import (
    CapacityModel,
    LoadBreakdown,
    overload_drop,
    queue_delay_ms,
    response_fraction,
)

UTIL = st.floats(min_value=0, max_value=1000)


class TestOverloadDrop:
    def test_zero_below_headroom(self):
        assert overload_drop(0.5, 0.8) == 0.0
        assert overload_drop(0.8, 0.8) == 0.0

    def test_classic_values(self):
        assert overload_drop(1.0, 0.8) == pytest.approx(0.2)
        assert overload_drop(2.0, 0.8) == pytest.approx(0.6)
        assert overload_drop(8.0, 0.8) == pytest.approx(0.9)

    @given(UTIL)
    def test_bounded(self, util):
        p = overload_drop(util, 0.8)
        assert 0.0 <= p < 1.0

    @given(st.tuples(UTIL, UTIL))
    def test_monotone(self, pair):
        lo, hi = sorted(pair)
        assert overload_drop(lo, 0.8) <= overload_drop(hi, 0.8)


class TestResponseFraction:
    def test_complements_drop(self):
        assert response_fraction(0.5) == 1.0
        assert response_fraction(4.0) == pytest.approx(0.2)

    @given(UTIL)
    def test_bounded(self, util):
        assert 0.0 < response_fraction(util) <= 1.0


class TestQueueDelay:
    def test_negligible_at_low_load(self):
        assert queue_delay_ms(0.0) == 0.0
        assert queue_delay_ms(0.3) < 1.0

    def test_grows_near_saturation(self):
        assert queue_delay_ms(0.95) > queue_delay_ms(0.5) * 5

    def test_capped_above_one(self):
        assert queue_delay_ms(5.0) == queue_delay_ms(1.0)


class TestLoadBreakdown:
    def test_quiet(self):
        assert LoadBreakdown().quiet
        assert not LoadBreakdown(server_util=0.1).quiet
        assert not LoadBreakdown(blackout=True).quiet

    def test_combined_drop_stacks(self):
        load = LoadBreakdown(server_util=2.0, link_util=2.0)
        p_each = overload_drop(2.0, 0.8)
        expected = 1 - (1 - p_each) ** 2
        assert load.combined_drop(0.8) == pytest.approx(expected)

    def test_combined_drop_zero_when_healthy(self):
        assert LoadBreakdown(server_util=0.5, link_util=0.5).combined_drop(0.8) == 0.0


class TestServerCost:
    def test_udp_53_is_app_layer(self):
        model = CapacityModel(app_layer_factor=4.0)
        assert model.server_cost_pps(100.0, (PORT_DNS,), PROTO_UDP) == 400.0
        assert model.is_app_layer((PORT_DNS,), PROTO_UDP)

    def test_tcp_53_is_syn_cost(self):
        model = CapacityModel()
        assert model.server_cost_pps(100.0, (PORT_DNS,), PROTO_TCP) == 100.0
        assert not model.is_app_layer((PORT_DNS,), PROTO_TCP)

    def test_other_ports_cheap(self):
        model = CapacityModel(other_port_factor=0.5)
        assert model.server_cost_pps(100.0, (PORT_HTTP,), PROTO_TCP) == 50.0


class TestSampleReply:
    def _sample_many(self, load, n=4000, seed=1):
        model = CapacityModel()
        rng = random.Random(seed)
        return [model.sample_reply(rng, 20.0, load) for _ in range(n)]

    def test_quiet_always_answers(self):
        replies = self._sample_many(LoadBreakdown(), n=500)
        assert all(r.answered for r in replies)
        assert all(r.rcode == Rcode.NOERROR for r in replies)

    def test_quiet_rtt_near_baseline(self):
        replies = self._sample_many(LoadBreakdown(), n=500)
        mean_rtt = sum(r.rtt_ms for r in replies) / len(replies)
        assert 20.0 < mean_rtt < 25.0

    def test_blackout_drops_everything(self):
        replies = self._sample_many(LoadBreakdown(blackout=True), n=200)
        assert all(not r.answered for r in replies)

    def test_overload_drop_rate(self):
        # u=2 -> p=0.6 at default headroom.
        replies = self._sample_many(LoadBreakdown(server_util=2.0))
        drop_rate = sum(1 for r in replies if not r.answered) / len(replies)
        assert 0.55 < drop_rate < 0.65

    def test_extreme_overload_nearly_dead(self):
        replies = self._sample_many(LoadBreakdown(server_util=400.0))
        # Nearly nothing resolves: the rare answers that do come back
        # are SERVFAILs from the drowning server.
        ok_rate = sum(1 for r in replies
                      if r.answered and r.rcode == Rcode.NOERROR) / len(replies)
        assert ok_rate < 0.01

    def test_servfail_mode_on_app_overload(self):
        load = LoadBreakdown(server_util=3.0, app_util=3.0, link_util=0.1)
        replies = self._sample_many(load)
        servfails = sum(1 for r in replies
                        if r.answered and r.rcode == Rcode.SERVFAIL)
        assert servfails > 0
        # SERVFAIL stays the minority failure mode (paper: 8% of failures).
        drops = sum(1 for r in replies if not r.answered)
        assert servfails < drops

    def test_no_servfail_when_link_saturated(self):
        load = LoadBreakdown(server_util=3.0, app_util=3.0, link_util=5.0)
        replies = self._sample_many(load)
        assert not any(r.answered and r.rcode == Rcode.SERVFAIL
                       for r in replies)

    def test_link_overload_alone_drops(self):
        replies = self._sample_many(LoadBreakdown(link_util=4.0))
        drop_rate = sum(1 for r in replies if not r.answered) / len(replies)
        assert 0.75 < drop_rate < 0.85


class TestModelValidation:
    @pytest.mark.parametrize("kwargs", [
        {"headroom": 0.0},
        {"headroom": 1.5},
        {"app_layer_factor": 0.5},
        {"other_port_factor": 1.5},
        {"servfail_weight": -0.1},
    ])
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            CapacityModel(**kwargs)
