"""Public-API hygiene: exports exist, are documented, and are stable."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro", "repro.util", "repro.net", "repro.dns", "repro.topology",
    "repro.anycast", "repro.world", "repro.attacks", "repro.telescope",
    "repro.openintel", "repro.streaming", "repro.chaos", "repro.obs",
    "repro.artifacts", "repro.engine", "repro.datasets", "repro.core",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        exported = getattr(module, "__all__", [])
        for name in exported:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_module_documented(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_top_level_api(self):
        assert callable(repro.run_study)
        assert callable(repro.build_world)
        assert repro.WorldConfig is not None
        assert repro.__version__

    @pytest.mark.parametrize("package", PACKAGES[1:])
    def test_public_callables_documented(self, package):
        module = importlib.import_module(package)
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if not callable(obj):
                continue
            if getattr(obj, "__module__", "") == "typing":
                continue  # typing aliases (e.g. Transport) carry no doc
            if not getattr(obj, "__doc__", None):
                undocumented.append(f"{package}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_version_matches_pyproject(self):
        import re
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        match = re.search(r'^version = "([^"]+)"', pyproject.read_text(),
                          re.MULTILINE)
        assert match
        assert repro.__version__ == match.group(1)
