"""Tests for the reflector-query inference branch (amplification)."""

import pytest

from repro.attacks.model import AmplificationProfile, Attack, AttackVector, Spoofing
from repro.net.ports import PORT_DNS, PROTO_UDP
from repro.telescope.darknet import Darknet
from repro.telescope.reflector import (
    InferredReflection,
    ReflectorClassifier,
    ReflectorFeed,
    ReflectorObservation,
    ReflectorSimulator,
    ReflectorThresholds,
    match_reflections,
)
from repro.util.timeutil import FIVE_MINUTES, HOUR, Window


def amplified_attack(victim_ip=0x0A000001, start=0, duration=30 * 60,
                     n_amplifiers=5_000, query_pps=20_000.0,
                     list_darknet_share=0.004, baf=30.0) -> Attack:
    profile = AmplificationProfile(
        n_amplifiers=n_amplifiers, mean_baf=baf, query_pps=query_pps,
        list_darknet_share=list_darknet_share)
    return Attack(
        victim_ip=victim_ip,
        window=Window(start, start + duration),
        vectors=[AttackVector(PROTO_UDP, (PORT_DNS,), query_pps * baf / 20,
                              Spoofing.AMPLIFIED, 1400)],
        amplification=profile)


def observation(ts=0, victim=1, n_queries=50, targets=5,
                qtype="ANY") -> ReflectorObservation:
    return ReflectorObservation(
        window_ts=ts, victim_ip=victim, n_queries=n_queries,
        max_qpm=n_queries / 5.0, n_dark_targets=targets, qtype=qtype)


class TestSimulator:
    @pytest.fixture()
    def simulator(self):
        return ReflectorSimulator(Darknet(), jitter_seed=99)

    def test_ignores_non_amplified_attacks(self, simulator):
        plain = Attack(victim_ip=1, window=Window(0, HOUR),
                       vectors=[AttackVector.udp_flood(PORT_DNS, 1000.0)])
        assert simulator.observe_attack(plain) == []

    def test_observes_every_active_window(self, simulator):
        attack = amplified_attack(duration=30 * 60)
        observations = simulator.observe_attack(attack)
        assert len(observations) == 6  # 30 min of 5-min buckets
        for obs in observations:
            assert obs.victim_ip == attack.victim_ip
            assert obs.qtype == "ANY"
            assert obs.n_queries > 0
            assert obs.max_qpm >= obs.n_queries / 5.0
            assert 1 <= obs.n_dark_targets <= \
                attack.amplification.darknet_list_entries

    def test_query_volume_tracks_darknet_list_share(self, simulator):
        # 20k qps over 5k amplifiers, 20 of them dark -> 80 qps at the
        # darknet -> ~24k queries per 5-minute window.
        attack = amplified_attack()
        expected = 20_000.0 * 20 / 5_000 * FIVE_MINUTES
        for obs in simulator.observe_attack(attack):
            assert obs.n_queries == pytest.approx(expected, rel=0.1)

    def test_deterministic_and_order_independent(self, simulator):
        a = amplified_attack(victim_ip=10)
        b = amplified_attack(victim_ip=20, start=2 * HOUR)
        forward = list(simulator.observe_all([a, b]))
        backward = list(simulator.observe_all([b, a]))
        assert sorted(forward, key=lambda o: (o.window_ts, o.victim_ip)) \
            == sorted(backward, key=lambda o: (o.window_ts, o.victim_ip))
        again = ReflectorSimulator(Darknet(), jitter_seed=99)
        assert list(again.observe_all([a, b])) == forward

    def test_no_stale_entries_no_observations(self, simulator):
        silent = amplified_attack(list_darknet_share=0.0)
        assert simulator.observe_attack(silent) == []


class TestClassifier:
    def test_infers_one_reflection_from_a_burst(self):
        observations = [observation(ts=i * FIVE_MINUTES, n_queries=40)
                        for i in range(4)]
        reflections = ReflectorClassifier().infer(observations)
        assert len(reflections) == 1
        r = reflections[0]
        assert r.start == 0
        assert r.end == 4 * FIVE_MINUTES
        assert r.n_queries == 160
        assert r.n_windows == 4

    def test_gap_splits_into_two_attacks(self):
        observations = (
            [observation(ts=i * FIVE_MINUTES) for i in range(3)]
            + [observation(ts=3 * HOUR + i * FIVE_MINUTES)
               for i in range(3)])
        reflections = ReflectorClassifier().infer(observations)
        assert len(reflections) == 2
        assert reflections[0].end <= reflections[1].start

    def test_rejects_single_window_scanners(self):
        assert ReflectorClassifier().infer([observation(n_queries=500)]) == []

    def test_rejects_single_target_streams(self):
        observations = [observation(ts=i * FIVE_MINUTES, targets=1)
                        for i in range(4)]
        assert ReflectorClassifier().infer(observations) == []

    def test_rejects_below_query_floor(self):
        observations = [observation(ts=i * FIVE_MINUTES, n_queries=5)
                        for i in range(3)]
        assert ReflectorClassifier().infer(observations) == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ReflectorThresholds(min_queries=0)
        with pytest.raises(ValueError):
            ReflectorThresholds(gap_s=60)


class TestInferredReflection:
    def test_join_projection_is_udp53(self):
        r = InferredReflection(
            victim_ip=7, start=0, end=HOUR, n_queries=900, max_qpm=120.0,
            max_dark_targets=9, qtype="ANY", n_windows=12)
        inferred = r.to_inferred()
        assert inferred.victim_ip == 7
        assert inferred.proto == PROTO_UDP
        assert inferred.first_port == PORT_DNS
        assert inferred.n_ports == 1
        assert inferred.n_unique_sources == 1
        assert inferred.duration_s == r.duration_s

    def test_victim_pps_extrapolation(self):
        r = InferredReflection(
            victim_ip=7, start=0, end=HOUR, n_queries=900, max_qpm=600.0,
            max_dark_targets=9, qtype="ANY", n_windows=12, assumed_baf=30.0)
        # 10 q/s seen over a 1% dark share -> 1000 q/s sprayed; each
        # query yields baf-times traffic at the victim.
        assert r.inferred_victim_pps(0.01, 1.0) == pytest.approx(30_000.0)


class TestFeedAndValidation:
    @pytest.fixture(scope="class")
    def schedule(self):
        return [amplified_attack(victim_ip=100 + i, start=i * 3 * HOUR)
                for i in range(4)]

    @pytest.fixture(scope="class")
    def feed(self, schedule):
        simulator = ReflectorSimulator(Darknet(), jitter_seed=5)
        return ReflectorFeed.observe(
            schedule, simulator,
            baf_of={a.victim_ip: a.amplification.mean_baf
                    for a in schedule})

    def test_recovers_the_seeded_schedule(self, schedule, feed):
        assert len(feed) == len(schedule)
        assert feed.victims() == sorted(a.victim_ip for a in schedule)
        pairs = match_reflections(schedule, feed.reflections)
        assert len(pairs) == len(schedule)
        for truth, inferred in pairs:
            assert inferred is not None
            assert inferred.start <= truth.window.start
            assert inferred.end >= truth.window.end
            assert inferred.assumed_baf == truth.amplification.mean_baf

    def test_observations_are_curated_to_reflections(self, feed):
        windows = {r.victim_ip: r.window for r in feed.reflections}
        for obs in feed.observations:
            assert windows[obs.victim_ip].contains(obs.window_ts)

    def test_projection_matches_reflections(self, feed):
        inferred = feed.inferred_attacks()
        assert len(inferred) == len(feed.reflections)
        assert [a.victim_ip for a in inferred] == \
            [r.victim_ip for r in feed.reflections]

    def test_match_skips_backscatter_attacks(self, schedule, feed):
        plain = Attack(victim_ip=1, window=Window(0, HOUR),
                       vectors=[AttackVector.udp_flood(PORT_DNS, 1000.0)])
        pairs = match_reflections(list(schedule) + [plain],
                                  feed.reflections)
        assert len(pairs) == len(schedule)
