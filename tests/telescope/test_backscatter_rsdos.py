"""Tests for backscatter observation and RSDoS inference."""

import random

import pytest

from repro.attacks.model import Attack, AttackVector, ImpairmentProfile, Spoofing
from repro.net.ports import PORT_DNS, PORT_HTTP, PROTO_TCP, PROTO_UDP
from repro.telescope.backscatter import BackscatterSimulator
from repro.telescope.darknet import Darknet
from repro.telescope.feed import RSDoSFeed, ppm_to_victim_pps
from repro.telescope.rsdos import RSDoSClassifier, RSDoSThresholds
from repro.util.timeutil import FIVE_MINUTES, HOUR, Window

VICTIM = 0x0A000001


def make_simulator(seed=1, link_util=0.0):
    return BackscatterSimulator(Darknet(), random.Random(seed),
                                link_util_fn=lambda ip, ts: link_util)


def visible_attack(pps=10_000.0, start=0, duration=HOUR, pool=None):
    return Attack(victim_ip=VICTIM, window=Window(start, start + duration),
                  vectors=[AttackVector.tcp_syn(PORT_DNS, pps)],
                  spoof_pool_size=pool)


class TestBackscatterObservation:
    def test_invisible_attack_unobserved(self):
        attack = Attack(victim_ip=VICTIM, window=Window(0, HOUR),
                        vectors=[AttackVector(PROTO_UDP, (53,), 1e4,
                                              Spoofing.REFLECTED)])
        assert make_simulator().observe_attack(attack) == []

    def test_window_count(self):
        obs = make_simulator().observe_attack(visible_attack(duration=HOUR))
        assert len(obs) == HOUR // FIVE_MINUTES

    def test_packet_rate_matches_coverage(self):
        # 10 Kpps response -> ~29.3 pps at the telescope -> ~8.8K per
        # 5-minute window.
        obs = make_simulator().observe_attack(visible_attack(pps=10_000.0))
        mean_packets = sum(o.n_packets for o in obs) / len(obs)
        expected = 10_000.0 * 300 / 341.33
        assert mean_packets == pytest.approx(expected, rel=0.1)

    def test_ppm_extrapolation_recovers_pps(self):
        # The paper's footnote-2 arithmetic must invert our generation.
        obs = make_simulator().observe_attack(visible_attack(pps=124_000.0))
        peak_ppm = max(o.max_ppm for o in obs)
        assert ppm_to_victim_pps(peak_ppm) == pytest.approx(124_000.0, rel=0.15)

    def test_link_saturation_suppresses_backscatter(self):
        healthy = make_simulator(link_util=0.0).observe_attack(visible_attack())
        choked = make_simulator(link_util=4.0).observe_attack(visible_attack())
        rate_h = sum(o.n_packets for o in healthy)
        rate_c = sum(o.n_packets for o in choked)
        # At 4x link saturation only ~20% of responses escape.
        assert rate_c < rate_h * 0.35

    def test_spoof_pool_bounds_unique_sources(self):
        pool = 341_330  # -> ~1000 addresses inside the darknet
        obs = make_simulator().observe_attack(
            visible_attack(pps=50_000.0, pool=pool))
        assert obs[-1].n_unique_sources <= pool / 341.33 * 1.05
        # Saturates: inferred attacker count ~ pool.
        inferred = obs[-1].n_unique_sources * 341.33
        assert inferred == pytest.approx(pool, rel=0.1)

    def test_ports_reported(self):
        obs = make_simulator().observe_attack(visible_attack())
        assert all(o.proto == PROTO_TCP for o in obs)
        assert all(o.first_port == PORT_DNS for o in obs)
        assert all(o.n_ports == 1 for o in obs)

    def test_slash16_breadth(self):
        obs = make_simulator().observe_attack(visible_attack(pps=50_000.0))
        # Tens of thousands of packets spread over 192 /16s: all hit.
        assert obs[0].n_slash16 == 192

    def test_small_attack_sparse(self):
        obs = make_simulator().observe_attack(visible_attack(pps=0.5))
        total = sum(o.n_packets for o in obs)
        assert total < 50  # ~0.0015 pps at the telescope

    def test_aggregate_matches_packet_level_reference(self):
        attack = visible_attack(pps=300.0, duration=1800)
        aggregate = make_simulator(seed=5).observe_attack(attack)
        packets = make_simulator(seed=6).materialize_packets(attack)
        agg_total = sum(o.n_packets for o in aggregate)
        assert agg_total == pytest.approx(len(packets), rel=0.15)

    def test_materialize_refuses_huge_attacks(self):
        with pytest.raises(ValueError):
            make_simulator().materialize_packets(visible_attack(pps=1e7))


class TestJitterOrderInvariance:
    """max_ppm jitter must be a pure function of (victim, window).

    Regression for an RNG-order coupling: the jitter used to be drawn
    inline from the shared stream per emitted window, so a window's
    jitter depended on how many windows were processed before it —
    serial and batched/reordered processing silently diverged.
    """

    def _jitter_factors(self, sim, attacks):
        return {(o.victim_ip, o.window_ts):
                o.max_ppm / (o.n_packets / 5.0)
                for a in attacks for o in sim.observe_attack(a)
                if o.n_packets}

    def test_serial_equals_batched_draws(self):
        other = Attack(victim_ip=VICTIM + 7, window=Window(0, 1800),
                       vectors=[AttackVector.tcp_syn(PORT_DNS, 5000.0)])
        attacks = [visible_attack(duration=1800), other]
        serial = make_simulator(seed=9)
        batched = BackscatterSimulator(
            Darknet(), random.Random(123),  # different shared-rng state
            jitter_seed=serial.jitter_seed)
        # Batched path processes the attacks in reverse order with a
        # differently-positioned shared stream; every (victim, window)
        # jitter factor must still match the serial draws exactly.
        want = self._jitter_factors(serial, attacks)
        got = self._jitter_factors(batched, list(reversed(attacks)))
        assert set(want) == set(got)
        for key in want:
            assert want[key] == got[key]

    def test_jitter_independent_of_shared_stream_position(self):
        a = make_simulator(seed=4)
        b = make_simulator(seed=4)
        b.rng.random()  # burn a draw: shared stream now out of phase
        assert a.window_jitter(VICTIM, 600) == b.window_jitter(VICTIM, 600)

    def test_jitter_varies_across_windows_and_victims(self):
        sim = make_simulator(seed=4)
        assert sim.window_jitter(VICTIM, 0) != sim.window_jitter(VICTIM, 300)
        assert sim.window_jitter(VICTIM, 0) != sim.window_jitter(VICTIM + 1, 0)


class TestRSDoSClassifier:
    def _observe(self, attacks, seed=1):
        return list(make_simulator(seed).observe_all(attacks))

    def test_infers_single_attack(self):
        attacks = self._infer([visible_attack()])
        assert len(attacks) == 1
        inferred = attacks[0]
        assert inferred.victim_ip == VICTIM
        assert inferred.start == 0
        assert inferred.end == HOUR

    def _infer(self, ground_truth, thresholds=None):
        observations = self._observe(ground_truth)
        return RSDoSClassifier(thresholds).infer(observations)

    def test_gap_splits_attacks(self):
        early = visible_attack(start=0, duration=1800)
        late = visible_attack(start=3 * HOUR, duration=1800)
        attacks = self._infer([early, late])
        assert len(attacks) == 2

    def test_short_gap_merges(self):
        early = visible_attack(start=0, duration=1800)
        late = visible_attack(start=1800 + 600, duration=1800)
        attacks = self._infer([early, late])
        assert len(attacks) == 1

    def test_noise_below_packet_threshold_dropped(self):
        attacks = self._infer([visible_attack(pps=0.05, duration=600)])
        assert attacks == []

    def test_breadth_threshold(self):
        # A stream confined to one darknet /16 is scanner-like noise,
        # not uniform spoofing: rebuild real observations with the
        # breadth field forced to 1 and check they are rejected.
        from dataclasses import replace

        observations = self._observe([visible_attack(pps=500.0)])
        narrow = [replace(o, n_slash16=1) for o in observations]
        assert RSDoSClassifier().infer(narrow) == []

    def test_duration_seconds(self):
        inferred = self._infer([visible_attack(duration=1800)])[0]
        assert inferred.duration_s == 1800

    def test_inferred_pps_extrapolation(self):
        inferred = self._infer([visible_attack(pps=34_100.0)])[0]
        assert inferred.inferred_victim_pps() == pytest.approx(34_100.0, rel=0.15)

    def test_multiple_victims_independent(self):
        other = Attack(victim_ip=VICTIM + 1, window=Window(0, 1800),
                       vectors=[AttackVector.tcp_syn(PORT_HTTP, 5000.0)])
        attacks = self._infer([visible_attack(duration=1800), other])
        assert len(attacks) == 2
        assert {a.victim_ip for a in attacks} == {VICTIM, VICTIM + 1}

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RSDoSThresholds(min_packets=0)
        with pytest.raises(ValueError):
            RSDoSThresholds(gap_s=60)


class TestRSDoSFeed:
    def _feed(self, attacks, seed=3):
        return RSDoSFeed.observe(attacks, make_simulator(seed))

    def test_observe_pipeline(self):
        feed = self._feed([visible_attack()])
        assert len(feed) == 1
        assert feed.victims() == [VICTIM]
        assert feed.records  # curated window records kept

    def test_records_belong_to_attacks(self):
        feed = self._feed([visible_attack(duration=1800)])
        attack = feed.attacks[0]
        for record in feed.records_of(attack):
            assert attack.window.contains(record.window_ts)

    def test_in_window(self):
        feed = self._feed([visible_attack(start=0, duration=1800),
                           visible_attack(start=4 * HOUR, duration=1800)])
        selected = feed.in_window(Window(0, 2 * HOUR))
        assert len(selected) == 1

    def test_victim_slash24s(self):
        feed = self._feed([visible_attack()])
        assert feed.victim_slash24s() == [VICTIM & 0xFFFFFF00]

    def test_dump_load_records_roundtrip(self, tmp_path):
        feed = self._feed([visible_attack(duration=1800)])
        path = tmp_path / "feed.csv"
        with open(path, "w") as fp:
            feed.dump_records(fp)
        with open(path) as fp:
            loaded = RSDoSFeed.load_records(fp)
        assert len(loaded) == len(feed.records)
        assert loaded[0].victim_ip == VICTIM

    def test_load_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope\n")
        with open(path) as fp:
            with pytest.raises(ValueError):
                RSDoSFeed.load_records(fp)
