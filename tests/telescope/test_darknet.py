"""Tests for the darknet address space and sampling math."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.net.ip import IPV4_SPACE, IPv4Prefix
from repro.telescope.darknet import TELESCOPE_COVERAGE, Darknet


class TestCoverage:
    def test_paper_ratio(self):
        # /9 + /10 = 1/341.33 of IPv4 space (paper footnote 2).
        darknet = Darknet()
        assert darknet.extrapolation_factor == pytest.approx(341.33, abs=0.01)
        assert TELESCOPE_COVERAGE == pytest.approx(1 / 341.33, rel=1e-4)

    def test_address_count(self):
        assert Darknet().n_addresses == 12_582_912

    def test_slash16_count(self):
        # A /9 holds 128 /16s, a /10 holds 64.
        assert Darknet().n_slash16s == 192

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Darknet(prefixes=())

    def test_custom_prefixes(self):
        darknet = Darknet(prefixes=(IPv4Prefix.parse("198.18.0.0/16"),))
        assert darknet.n_addresses == 65536
        assert darknet.extrapolation_factor == pytest.approx(65536.0)


class TestMembershipAndSampling:
    def test_contains(self):
        darknet = Darknet()
        assert darknet.contains(IPv4Prefix.parse("44.0.0.0/9").network + 5)
        assert darknet.contains(IPv4Prefix.parse("44.128.0.0/10").network + 5)
        assert not darknet.contains(0x08080808)

    def test_sample_address_always_inside(self):
        darknet = Darknet()
        rng = random.Random(1)
        for _ in range(500):
            assert darknet.contains(darknet.sample_address(rng))

    def test_sample_covers_both_prefixes(self):
        darknet = Darknet()
        rng = random.Random(2)
        in_slash10 = sum(
            1 for _ in range(3000)
            if IPv4Prefix.parse("44.128.0.0/10").contains_ip(
                darknet.sample_address(rng)))
        # /10 is one third of the darknet.
        assert 800 < in_slash10 < 1200


class TestExpectations:
    def test_expected_hits_linear(self):
        darknet = Darknet()
        assert darknet.expected_hits(341.33e6) == pytest.approx(1e6, rel=1e-3)

    def test_expected_unique_slash16_saturates(self):
        darknet = Darknet()
        assert darknet.expected_unique_slash16(0) == 0.0
        assert darknet.expected_unique_slash16(10) == pytest.approx(10, rel=0.05)
        assert darknet.expected_unique_slash16(1e9) == pytest.approx(192)

    def test_expected_unique_addresses_saturates_at_pool(self):
        darknet = Darknet()
        pool_in_darknet = 1000.0
        assert darknet.expected_unique_addresses(1e9, pool_in_darknet) == \
            pytest.approx(1000.0)

    @given(st.floats(min_value=0, max_value=1e7),
           st.floats(min_value=1, max_value=1e7))
    def test_unique_never_exceeds_packets_or_pool(self, packets, pool):
        darknet = Darknet()
        unique = darknet.expected_unique_addresses(packets, pool)
        assert unique <= pool + 1e-6
        assert unique <= packets + 1e-6
