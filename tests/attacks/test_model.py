"""Tests for the attack data model."""

import pytest

from repro.attacks.model import (
    Attack,
    AttackVector,
    Campaign,
    ImpairmentProfile,
    Spoofing,
)
from repro.net.ports import PORT_DNS, PORT_HTTP, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.util.timeutil import HOUR, Window


def simple_attack(pps=1000.0, start=10_000, duration=3600, **kwargs):
    return Attack(victim_ip=0x0A000001,
                  window=Window(start, start + duration),
                  vectors=[AttackVector.udp_flood(PORT_DNS, pps)],
                  **kwargs)


class TestAttackVector:
    def test_tcp_syn_small_packets(self):
        v = AttackVector.tcp_syn(80, 1000.0)
        assert v.packet_bytes == 60
        assert v.proto == PROTO_TCP

    def test_udp_flood_large_packets(self):
        v = AttackVector.udp_flood(53, 1000.0)
        assert v.packet_bytes == 1400
        assert v.targets_dns_port

    def test_icmp_no_ports(self):
        v = AttackVector.icmp_flood(500.0)
        assert v.ports == ()
        assert v.first_port == 0

    def test_tcp_requires_ports(self):
        with pytest.raises(ValueError):
            AttackVector(PROTO_TCP, (), 100.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            AttackVector.udp_flood(53, 0.0)

    def test_rejects_bad_port(self):
        with pytest.raises(ValueError):
            AttackVector(PROTO_UDP, (70000,), 100.0)

    def test_bits_per_second(self):
        v = AttackVector.udp_flood(53, 1000.0)
        assert v.bits_per_second == 1000.0 * 1400 * 8

    def test_spoofing_visibility(self):
        assert Spoofing.RANDOM.telescope_visible
        assert not Spoofing.REFLECTED.telescope_visible
        assert not Spoofing.UNSPOOFED.telescope_visible


class TestImpairmentProfile:
    def test_defaults_are_inert(self):
        profile = ImpairmentProfile()
        assert profile.aftermath_s == 0
        assert profile.blackout_start is None

    @pytest.mark.parametrize("kwargs", [
        {"aftermath_s": -1},
        {"aftermath_load": 1.5},
        {"scrub_efficiency": -0.1},
        {"blackout_s": -5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ImpairmentProfile(**kwargs)


class TestAttackRates:
    def test_total_and_spoofed_pps(self):
        attack = Attack(
            victim_ip=1,
            window=Window(0, 100),
            vectors=[
                AttackVector.udp_flood(53, 1000.0),
                AttackVector(PROTO_TCP, (80,), 500.0, Spoofing.REFLECTED),
            ])
        assert attack.total_pps == 1500.0
        assert attack.spoofed_pps == 1000.0

    def test_effective_pps_inside_window(self):
        attack = simple_attack(pps=1000.0)
        assert attack.effective_pps(10_500) == 1000.0

    def test_effective_pps_outside_window(self):
        attack = simple_attack()
        assert attack.effective_pps(0) == 0.0
        assert attack.effective_pps(10_000 + 3600) == 0.0

    def test_scrubbing_reduces_rate(self):
        attack = simple_attack(
            pps=1000.0,
            impairment=ImpairmentProfile(scrub_delay_s=600,
                                         scrub_efficiency=0.4))
        assert attack.effective_pps(10_100) == 1000.0      # pre-scrub
        assert attack.effective_pps(10_700) == pytest.approx(600.0)

    def test_aftermath_decays_linearly(self):
        attack = simple_attack(
            pps=1000.0, duration=100,
            impairment=ImpairmentProfile(aftermath_s=100, aftermath_load=0.8))
        end = 10_100
        assert attack.effective_pps(end) == pytest.approx(800.0)
        assert attack.effective_pps(end + 50) == pytest.approx(400.0)
        assert attack.effective_pps(end + 100) == 0.0

    def test_effective_spoofed_scales_proportionally(self):
        attack = Attack(
            victim_ip=1, window=Window(0, 1000),
            vectors=[
                AttackVector.udp_flood(53, 600.0),
                AttackVector(PROTO_UDP, (80,), 400.0, Spoofing.REFLECTED),
            ],
            impairment=ImpairmentProfile(scrub_delay_s=0, scrub_efficiency=0.5))
        assert attack.effective_spoofed_pps(500) == pytest.approx(300.0)


class TestAttackClassification:
    def test_single_port(self):
        assert simple_attack().is_single_port
        multi = Attack(victim_ip=1, window=Window(0, 10),
                       vectors=[AttackVector(PROTO_UDP, (53, 80), 10.0)])
        assert not multi.is_single_port

    def test_multi_proto_not_single_port(self):
        attack = Attack(victim_ip=1, window=Window(0, 10),
                        vectors=[AttackVector.udp_flood(53, 10.0),
                                 AttackVector.tcp_syn(53, 10.0)])
        assert not attack.is_single_port

    def test_multi_vector(self):
        assert not simple_attack().is_multi_vector

    def test_telescope_visible(self):
        invisible = Attack(victim_ip=1, window=Window(0, 10),
                           vectors=[AttackVector(PROTO_UDP, (53,), 10.0,
                                                 Spoofing.REFLECTED)])
        assert not invisible.telescope_visible
        assert simple_attack().telescope_visible

    def test_impact_window_extends_for_aftermath(self):
        attack = simple_attack(duration=100,
                               impairment=ImpairmentProfile(aftermath_s=500,
                                                            aftermath_load=1.0))
        assert attack.impact_window.end == attack.window.end + 500

    def test_impact_window_covers_blackout(self):
        attack = simple_attack(
            duration=100,
            impairment=ImpairmentProfile(blackout_start=10_050,
                                         blackout_s=10_000))
        assert attack.impact_window.end >= 20_050

    def test_blackout_window(self):
        attack = simple_attack(
            impairment=ImpairmentProfile(blackout_start=100, blackout_s=50))
        blackout = attack.blackout_window()
        assert (blackout.start, blackout.end) == (100, 150)
        assert simple_attack().blackout_window() is None

    def test_victim_slash24(self):
        assert simple_attack().victim_slash24 == 0x0A000000

    def test_rejects_empty_vectors(self):
        with pytest.raises(ValueError):
            Attack(victim_ip=1, window=Window(0, 10), vectors=[])

    def test_rejects_bad_spoof_pool(self):
        with pytest.raises(ValueError):
            simple_attack(spoof_pool_size=0)

    def test_attack_ids_unique(self):
        assert simple_attack().attack_id != simple_attack().attack_id


class TestCampaign:
    def test_campaign_ids_propagate(self):
        campaign = Campaign("test", attacks=[simple_attack(), simple_attack()])
        assert all(a.campaign_id == campaign.campaign_id
                   for a in campaign.attacks)

    def test_add_propagates(self):
        campaign = Campaign("test")
        attack = simple_attack()
        campaign.add(attack)
        assert attack.campaign_id == campaign.campaign_id

    def test_victims_sorted_unique(self):
        a1 = simple_attack()
        a2 = simple_attack()
        campaign = Campaign("t", attacks=[a1, a2])
        assert campaign.victims == (a1.victim_ip,)

    def test_window_spans_attacks(self):
        a1 = simple_attack(start=1000, duration=100)
        a2 = simple_attack(start=2000, duration=100)
        campaign = Campaign("t", attacks=[a1, a2])
        assert campaign.window.start == 1000
        assert campaign.window.end == 2100

    def test_empty_campaign_window_raises(self):
        with pytest.raises(ValueError):
            _ = Campaign("t").window
