"""Tests for attack schedule generation: empirical mixes of §6."""

import random

import pytest

from repro.attacks.generator import (
    HIGH_MODE_PPS,
    LOW_MODE_PPS,
    AttackMix,
    AttackScheduleConfig,
    HotTarget,
    TargetCatalog,
    generate_schedule,
    sample_duration,
    sample_intensity,
)
from repro.net.ports import PORT_DNS, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.util.timeutil import HOUR, MINUTE, Timeline


@pytest.fixture(scope="module")
def timeline():
    return Timeline("2021-01-01", "2021-04-01")


@pytest.fixture(scope="module")
def catalog():
    ns_ips = {0x0A000000 + i: float(1 + i % 5) for i in range(30)}
    groups = {}
    ips = sorted(ns_ips)
    for i in range(0, 30, 3):
        group = tuple(ips[i:i + 3])
        for ip in group:
            groups[ip] = group
    return TargetCatalog(
        ns_ip_weights=ns_ips,
        other_ips=[0x14000000 + i for i in range(500)],
        hot_targets=[HotTarget(ip=0x08080808, n_attacks=1000, label="hot")],
        ns_groups=groups)


@pytest.fixture(scope="module")
def schedule(timeline, catalog):
    config = AttackScheduleConfig(attacks_per_month=800,
                                  dns_attack_fraction=0.05, scale=0.01)
    return generate_schedule(random.Random(42), timeline, catalog, config)


class TestSampling:
    def test_duration_bimodal(self):
        rng = random.Random(1)
        config = AttackScheduleConfig()
        durations = [sample_duration(rng, config) for _ in range(4000)]
        near_15m = sum(1 for d in durations if 10 * MINUTE <= d <= 25 * MINUTE)
        near_1h = sum(1 for d in durations if 45 * MINUTE <= d <= 90 * MINUTE)
        assert near_15m > 800
        assert near_1h > 800

    def test_duration_bounds(self):
        rng = random.Random(2)
        config = AttackScheduleConfig()
        for _ in range(1000):
            d = sample_duration(rng, config)
            assert 5 * MINUTE <= d <= 24 * HOUR

    def test_intensity_bimodal(self):
        rng = random.Random(3)
        config = AttackScheduleConfig()
        rates = [sample_intensity(rng, config) for _ in range(4000)]
        low = sum(1 for r in rates if r < LOW_MODE_PPS * 5)
        high = sum(1 for r in rates if r > HIGH_MODE_PPS / 5)
        assert low > 1200
        assert high > 800

    def test_intensity_positive(self):
        rng = random.Random(4)
        config = AttackScheduleConfig()
        assert all(sample_intensity(rng, config) > 0 for _ in range(500))


class TestAttackMix:
    def test_proto_shares(self):
        rng = random.Random(5)
        mix = AttackMix()
        protos = [mix.pick_proto(rng) for _ in range(5000)]
        tcp = protos.count(PROTO_TCP) / len(protos)
        udp = protos.count(PROTO_UDP) / len(protos)
        icmp = protos.count(PROTO_ICMP) / len(protos)
        assert 0.87 < tcp < 0.93       # paper: 90.4%
        assert 0.06 < udp < 0.11       # paper: 8.4%
        assert 0.005 < icmp < 0.025    # paper: 1.2%

    def test_single_port_share(self):
        rng = random.Random(6)
        mix = AttackMix()
        singles = sum(1 for _ in range(3000)
                      if len(mix.pick_ports(rng, PROTO_TCP)) == 1)
        assert 0.77 < singles / 3000 < 0.85  # paper: 80.7%

    def test_icmp_has_no_ports(self):
        rng = random.Random(7)
        assert AttackMix().pick_ports(rng, PROTO_ICMP) == ()

    def test_udp_port53_one_third(self):
        rng = random.Random(8)
        mix = AttackMix()
        firsts = [mix.pick_ports(rng, PROTO_UDP)[0] for _ in range(3000)]
        share = firsts.count(PORT_DNS) / len(firsts)
        assert 0.28 < share < 0.39     # paper: ~1/3


class TestGenerateSchedule:
    def test_all_inside_timeline(self, schedule, timeline):
        for attack in schedule:
            assert attack.window.start in timeline

    def test_sorted_by_start(self, schedule):
        starts = [a.window.start for a in schedule]
        assert starts == sorted(starts)

    def test_volume_near_configured(self, schedule):
        # 3 months x 800 +- jitter + hot targets.
        assert 1800 < len(schedule) < 3200

    def test_dns_attacks_present(self, schedule, catalog):
        ns_ips = set(catalog.ns_ip_weights)
        dns = [a for a in schedule if a.victim_ip in ns_ips]
        assert len(dns) > 50

    def test_campaigns_share_windows(self, schedule, catalog):
        # Campaign-mode attacks create same-window sibling attacks.
        ns_ips = set(catalog.ns_ip_weights)
        by_window = {}
        for attack in schedule:
            if attack.victim_ip in ns_ips:
                by_window.setdefault(
                    (attack.window.start, attack.window.end), []).append(attack)
        assert any(len(group) >= 3 for group in by_window.values())

    def test_hot_target_scaled(self, schedule):
        hot = [a for a in schedule if a.victim_ip == 0x08080808]
        # 1000 * scale 0.01 = 10 expected.
        assert 5 <= len(hot) <= 20

    def test_hot_target_month_restriction(self, timeline, catalog):
        restricted = TargetCatalog(
            ns_ip_weights=dict(catalog.ns_ip_weights),
            other_ips=list(catalog.other_ips),
            hot_targets=[HotTarget(ip=0x08080404, n_attacks=2000,
                                   label="feb-only",
                                   months=((2021, 2),))])
        schedule = generate_schedule(
            random.Random(1), timeline, restricted,
            AttackScheduleConfig(attacks_per_month=0, scale=0.01))
        assert schedule
        for attack in schedule:
            from repro.util.timeutil import month_key
            assert month_key(attack.window.start) == (2021, 2)

    def test_invisible_fraction(self, schedule):
        invisible = sum(1 for a in schedule if not a.telescope_visible)
        share = invisible / len(schedule)
        assert 0.06 < share < 0.20     # configured 0.12

    def test_deterministic(self, timeline, catalog):
        config = AttackScheduleConfig(attacks_per_month=100, scale=0.001)
        a = generate_schedule(random.Random(9), timeline, catalog, config)
        b = generate_schedule(random.Random(9), timeline, catalog, config)
        assert [(x.victim_ip, x.window.start) for x in a] == \
            [(x.victim_ip, x.window.start) for x in b]

    def test_zero_attacks(self, timeline, catalog):
        config = AttackScheduleConfig(attacks_per_month=0, scale=0.0001)
        schedule = generate_schedule(random.Random(1), timeline,
                                     TargetCatalog(), config)
        assert schedule == []


class TestConfigValidation:
    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            AttackScheduleConfig(dns_attack_fraction=1.5)
        with pytest.raises(ValueError):
            AttackScheduleConfig(campaign_fraction=-0.1)
        with pytest.raises(ValueError):
            AttackScheduleConfig(attacks_per_month=-1)

    def test_catalog_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            TargetCatalog(ns_ip_weights={1: 0.0})
