"""Tests for the scenario-pack plugin layer (registry + pack hooks)."""

import dataclasses

import pytest

from repro import WorldConfig, build_world
from repro.attacks.amplification import (
    AmplificationPack,
    AmplificationParams,
)
from repro.attacks.defense import DefenseParams
from repro.attacks.model import Spoofing
from repro.attacks.packs import (
    DEFAULT_PACK,
    ScenarioPack,
    TelescopeSignature,
    UnknownPackError,
    VolumetricPack,
    available_packs,
    get_pack,
    register_pack,
    validate_pack_name,
)
from repro.attacks.wartime import WartimeParams


class TestRegistry:
    def test_builtins_are_available(self):
        names = available_packs()
        assert {"volumetric", "amplification", "wartime",
                "defense"} <= set(names)
        assert names == sorted(names)

    def test_default_pack_is_volumetric(self):
        assert DEFAULT_PACK == "volumetric"
        assert isinstance(get_pack(DEFAULT_PACK), VolumetricPack)

    def test_get_pack_lazily_resolves_builtins(self):
        pack = get_pack("amplification")
        assert pack.name == "amplification"
        assert isinstance(pack.params, AmplificationParams)

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(UnknownPackError) as exc:
            get_pack("slowloris")
        message = str(exc.value)
        assert "unknown scenario pack 'slowloris'" in message
        for name in available_packs():
            assert name in message

    def test_validate_pack_name_accepts_builtins_without_import(self):
        for name in ("volumetric", "amplification", "wartime", "defense"):
            assert validate_pack_name(name) == name
        with pytest.raises(UnknownPackError):
            validate_pack_name("nope")

    def test_register_pack_requires_concrete_name(self):
        class Anonymous(ScenarioPack):
            pass

        with pytest.raises(ValueError):
            register_pack(Anonymous)

    def test_register_and_shadow(self):
        from repro.attacks import packs as packs_module

        @register_pack
        class Probe(ScenarioPack):
            name = "test-probe"
            description = "registered by the test suite"

        try:
            assert "test-probe" in available_packs()
            assert isinstance(get_pack("test-probe"), Probe)
        finally:
            del packs_module._REGISTRY["test-probe"]

    def test_params_override(self):
        params = AmplificationParams(n_attacks=2)
        pack = get_pack("amplification", params)
        assert pack.params is params


class TestWorldConfigIntegration:
    def test_config_carries_pack_name(self):
        config = WorldConfig.tiny()
        assert config.scenario_pack == "volumetric"
        assert config.pack_params is None

    def test_config_rejects_unknown_pack(self):
        with pytest.raises(UnknownPackError):
            dataclasses.replace(WorldConfig.tiny(), scenario_pack="nope")

    def test_build_world_attaches_the_pack(self, tiny_world):
        assert isinstance(tiny_world.pack, VolumetricPack)

    def test_pack_rng_isolation(self, tiny_config, tiny_world):
        """Selecting a pack must not perturb the background schedule:
        packs draw only from their own ``pack:<name>`` streams."""
        config = dataclasses.replace(
            tiny_config, scenario_pack="amplification",
            pack_params=AmplificationParams(n_attacks=3))
        world = build_world(config)
        amplified = [a for a in world.attacks if a.amplification is not None]
        background = [a for a in world.attacks if a.amplification is None]
        assert len(amplified) == 3
        assert len(background) == len(tiny_world.attacks)
        for ours, theirs in zip(background, tiny_world.attacks):
            assert ours.victim_ip == theirs.victim_ip
            assert ours.window == theirs.window
            assert ours.total_pps == theirs.total_pps


class TestVolumetricPack:
    def test_every_hook_is_a_noop(self, tiny_world):
        pack = VolumetricPack()
        assert pack.generate_attacks(tiny_world) == []
        assert pack.observe_darknet(tiny_world) is None
        assert pack.has_counterfactuals is False
        assert pack.counterfactuals(tiny_world, []) is None
        assert pack.telescope_signature() == TelescopeSignature()
        assert pack.telescope_signature().reflector_queries is False


class TestAmplificationPack:
    def test_signature_declares_reflector_queries(self):
        signature = get_pack("amplification").telescope_signature()
        assert signature.reflector_queries is True

    def test_response_vector_math(self):
        # BAF 32 * 64 B = 2048 B -> 2 fragments of 1024 B.
        vector = AmplificationPack._response_vector(10_000.0, 32.0)
        assert vector.spoofing is Spoofing.AMPLIFIED
        assert vector.pps == 20_000.0
        assert vector.packet_bytes == 1024
        # A small response stays one packet at its full size.
        small = AmplificationPack._response_vector(10_000.0, 4.0)
        assert small.pps == 10_000.0
        assert small.packet_bytes == 256

    def test_generated_attacks_are_reflector_visible_only(self, tiny_config):
        config = dataclasses.replace(
            tiny_config, scenario_pack="amplification")
        world = build_world(config)
        amplified = [a for a in world.attacks if a.amplification is not None]
        assert len(amplified) == AmplificationParams().n_attacks
        for attack in amplified:
            assert attack.reflector_visible
            assert not attack.telescope_visible  # no backscatter
            assert attack.victim_ip in world.nameservers_by_ip

    def test_params_validation(self):
        with pytest.raises(ValueError):
            AmplificationParams(mean_baf=0.5)
        with pytest.raises(ValueError):
            AmplificationParams(list_darknet_share=1.5)
        with pytest.raises(ValueError):
            AmplificationParams(duration_s=10)


class TestWartimePack:
    @pytest.fixture(scope="class")
    def wartime_world(self, tiny_config):
        return build_world(dataclasses.replace(
            tiny_config, scenario_pack="wartime",
            pack_params=WartimeParams(start_day=2)))

    def test_enrichment_orgs_installed(self, wartime_world):
        p = WartimeParams()
        sector_providers = [
            prov for prov in wartime_world.providers.values()
            if prov.org is not None and prov.org.name.startswith("RU ")]
        assert len(sector_providers) == p.n_extra_orgs
        for prov in sector_providers:
            assert prov.org.country == "RU"
            assert prov.nameservers

    def test_waves_hit_every_target_country_org(self, wartime_world):
        pack = wartime_world.pack
        providers = pack._target_providers(wartime_world)
        target_ips = {ns.ip for prov in providers
                      for ns in prov.nameservers}
        # Scripted RU providers (mil.ru, RZD) join the enrichment orgs.
        names = {prov.name for prov in providers}
        assert "Russian MoD" in names and "RZD" in names
        wave_attacks = [a for a in wartime_world.attacks
                        if a.victim_ip in target_ips]
        assert wave_attacks
        hit_orgs = {wartime_world.nameservers_by_ip[a.victim_ip]
                    .provider_name for a in wave_attacks}
        assert len(hit_orgs) >= WartimeParams().n_extra_orgs

    def test_spoofing_mix_includes_invisible_attacks(self, wartime_world):
        pack = wartime_world.pack
        providers = pack._target_providers(wartime_world)
        target_ips = {ns.ip for prov in providers
                      for ns in prov.nameservers}
        hits = [a for a in wartime_world.attacks
                if a.victim_ip in target_ips]
        visible = [a for a in hits if a.telescope_visible]
        assert 0 < len(visible) < len(hits)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            WartimeParams(n_waves=0)
        with pytest.raises(ValueError):
            WartimeParams(reflected_share=1.5)


class TestDefensePack:
    def test_declares_counterfactuals(self):
        pack = get_pack("defense")
        assert pack.has_counterfactuals is True
        assert pack.generate_attacks(None) == []

    def test_schedule_untouched(self, tiny_config, tiny_world):
        config = dataclasses.replace(tiny_config, scenario_pack="defense")
        world = build_world(config)
        assert len(world.attacks) == len(tiny_world.attacks)
        assert [a.victim_ip for a in world.attacks] == \
            [a.victim_ip for a in tiny_world.attacks]

    def test_params_validation(self):
        with pytest.raises(ValueError):
            DefenseParams(layers=())
