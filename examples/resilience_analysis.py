#!/usr/bin/env python3
"""Resilience-technique efficacy (§6.6, Figures 11-13).

Runs the longitudinal study, then stratifies every attack event by the
NSSet's anycast label, AS diversity, and /24 prefix diversity — and also
demonstrates *why* anycast wins, by querying the world's load model
directly: the same attack against a unicast server vs each site of an
anycast deployment.

Run:  python examples/resilience_analysis.py
"""

import sys
import time

from repro import WorldConfig, run_study
from repro.anycast.deployment import AnycastDeployment
from repro.core.resilience import complete_failure_prefix_shares
from repro.util.tables import Table, format_pct
from repro.world.capacity import overload_drop


def mechanism_demo():
    """First principles: one 400 Kpps attack, three deployments."""
    table = Table(["deployment", "per-server load", "drop probability"],
                  title="Why anycast wins: one 400 Kpps attack, "
                        "100 Kpps per server/site")
    attack_pps = 400_000.0
    capacity = 100_000.0

    unicast_util = attack_pps / capacity
    table.add_row(["unicast, 1 server", f"{unicast_util:.1f}x capacity",
                   format_pct(overload_drop(unicast_util, 0.8))])

    deployment = AnycastDeployment.build(seed=3, n_sites=12,
                                         per_site_capacity_pps=capacity)
    worst = max(deployment.load_at_site(site, attack_pps)
                for site in deployment.sites)
    table.add_row(["anycast, 12 sites (worst catchment)",
                   f"{worst:.2f}x capacity",
                   format_pct(overload_drop(worst, 0.8))])

    big = AnycastDeployment.build(seed=3, n_sites=30,
                                  per_site_capacity_pps=capacity)
    worst_big = max(big.load_at_site(site, attack_pps) for site in big.sites)
    table.add_row(["anycast, 30 sites (worst catchment)",
                   f"{worst_big:.2f}x capacity",
                   format_pct(overload_drop(worst_big, 0.8))])
    return table


def strata_table(groups, title, order=None):
    table = Table(["stratum", "events", "median impact", ">=10x", ">=100x",
                   "failing"], title=title)
    labels = order or sorted(groups)
    for label in labels:
        if label not in groups:
            continue
        g = groups[label]
        median = f"{g.median_impact:.2f}x" if g.median_impact else "-"
        table.add_row([g.label, g.n_events, median,
                       format_pct(g.over_10x_share), g.over_100x,
                       format_pct(g.failing_share)])
    return table


def main() -> int:
    print(mechanism_demo().render())

    config = WorldConfig(
        seed=42,
        start="2021-01-01",
        end_exclusive="2021-07-01",
        n_domains=6000,
        attacks_per_month=800,
    )
    print("\nrunning six-month study for the event-level view...",
          file=sys.stderr)
    t0 = time.time()
    study = run_study(config)
    print(f"done in {time.time() - t0:.1f}s: {len(study.events)} events\n",
          file=sys.stderr)

    res = study.resilience
    print(strata_table(
        res.by_anycast,
        "Figure 11 - anycast vs DDoS (paper: anycast impact 1-1.5x, no "
        "anycast NSSet ever saw 100x)",
        order=["anycast", "partial", "unicast"]).render())
    print()
    print(strata_table(
        res.by_asn_count,
        "Figure 12 - AS diversity (paper: no clear protection alone; 81% "
        "of complete failures were single-ASN)").render())
    print()
    print(strata_table(
        res.by_prefix_count,
        "Figure 13 - /24 prefix diversity (paper: a single /24 is the "
        "worst deployment choice; 60% of failing NSSets were "
        "single-prefix)").render())

    shares = complete_failure_prefix_shares(study.events)
    if shares:
        rendered = ", ".join(f"{k}: {format_pct(v)}"
                             for k, v in shares.items())
        print(f"\ncomplete failures by prefix diversity: {rendered} "
              f"(paper: most on one prefix, ~30% on two, ~10% on three+)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
