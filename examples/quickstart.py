#!/usr/bin/env python3
"""Quickstart: run the full study pipeline on a small world and print
the paper-style report.

This is the one-command tour of the reproduction:

1. build a seeded synthetic Internet (providers, domains, attacks),
2. observe it with the darknet telescope (-> RSDoS feed) and the
   OpenINTEL-style daily DNS crawl,
3. join the two datasets with the paper's §4 pipeline,
4. print every §6 analysis (monthly activity, ports, failures, impact,
   correlations, resilience efficacy, top targets).

Run:  python examples/quickstart.py [--months N] [--domains N] [--seed N]
"""

import argparse
import sys
import time

from repro import WorldConfig, run_study


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domains", type=int, default=4000,
                        help="registered domains in the world (default 4000)")
    parser.add_argument("--attacks-per-month", type=int, default=600,
                        help="ground-truth attacks per month (default 600)")
    parser.add_argument("--start", default="2021-01-01",
                        help="study start date (default 2021-01-01)")
    parser.add_argument("--end", default="2021-04-01",
                        help="study end date, exclusive (default 2021-04-01)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    config = WorldConfig(
        seed=args.seed,
        start=args.start,
        end_exclusive=args.end,
        n_domains=args.domains,
        attacks_per_month=args.attacks_per_month,
        n_selfhosted_providers=60,
        n_filler_providers=20,
    )

    print(f"building world and running both measurement systems "
          f"({args.start} .. {args.end}, {args.domains} domains)...",
          file=sys.stderr)
    t0 = time.time()
    study = run_study(config)
    elapsed = time.time() - t0
    print(f"done in {elapsed:.1f}s: {len(study.feed.attacks)} inferred "
          f"attacks, {study.store.n_measurements:,} measurements, "
          f"{len(study.events)} attack events\n", file=sys.stderr)

    print(study.report())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
