#!/usr/bin/env python3
"""Tour of the wire-level DNS substrate (§2.2/§6.2 background machinery).

Builds a miniature DNS hierarchy from zone files — root, ``com``, and a
signed ``example.com`` — places authoritative servers for each, and
resolves names iteratively from the root hints, printing the referral
walk, the DNSSEC response-size inflation, and the UDP-truncation ->
TCP-fallback path that underlies the paper's observation that DNS
attacks increasingly ride TCP.

Run:  python examples/wire_level_dns.py
"""

import io

from repro.dns.authoritative import AuthoritativeServer, response_size
from repro.dns.iterative import DnsUniverse, IterativeResolver
from repro.dns.message import Edns, Message
from repro.dns.rr import RRType
from repro.dns.zonefile import parse_zone_file
from repro.net.ip import ip_to_str, parse_ip

ROOT_ZONE = """\
$ORIGIN .
$TTL 86400
@ IN SOA a.root-servers.net. nstld.verisign-grs.com. 2022032901 1800 900 604800 86400
com.                 IN NS a.gtld-servers.net.
a.gtld-servers.net.  IN A  192.5.6.30
"""

COM_ZONE = """\
$ORIGIN com.
$TTL 172800
@ IN SOA a.gtld-servers.net. nstld.verisign-grs.com. 1646255701 1800 900 604800 86400
example          IN NS ns1.example.com.
ns1.example.com. IN A  203.0.113.53
"""

# The apex has a fat A RRset (a CDN-style answer): signed, it no longer
# fits the classic 512-byte UDP budget.
EXAMPLE_ZONE = """\
$ORIGIN example.com.
$TTL 3600
@    IN SOA ns1 hostmaster 2022030801 7200 900 1209600 3600
@    IN NS  ns1
ns1  IN A   203.0.113.53
""" + "".join(f"@ IN A 192.0.2.{80 + i}\n" for i in range(12)) + """\
www  IN CNAME @
"""

ROOT_IP = parse_ip("198.41.0.4")
COM_IP = parse_ip("192.5.6.30")
EXAMPLE_IP = parse_ip("203.0.113.53")


def main() -> int:
    servers = {}
    for name, text, ip, signed in (("root", ROOT_ZONE, ROOT_IP, False),
                                   ("com", COM_ZONE, COM_IP, False),
                                   ("example.com", EXAMPLE_ZONE,
                                    EXAMPLE_IP, True)):
        zone = parse_zone_file(io.StringIO(text))
        server = AuthoritativeServer()
        server.add_zone(zone, signed=signed)
        servers[name] = server
        print(f"loaded zone {zone.apex.to_text() or '.'}: "
              f"{len(zone)} rrsets, serial {zone.soa.serial}"
              f"{' (signed)' if signed else ''}")

    universe = DnsUniverse()
    universe.place_server(ROOT_IP, servers["root"], is_root=True)
    universe.place_server(COM_IP, servers["com"])
    universe.place_server(EXAMPLE_IP, servers["example.com"])

    print("\niterative resolution of www.example.com from the root:")
    resolver = IterativeResolver(universe)
    result = resolver.resolve("www.example.com")
    for i, server_ip in enumerate(result.trace.servers_contacted):
        print(f"  step {i + 1}: asked {ip_to_str(server_ip)}")
    print(f"  -> {result.status}, answers:")
    for rr in result.answers:
        print(f"     {rr}")

    print("\nDNSSEC response-size inflation (why DNS-over-TCP rose, §6.2):")
    plain = servers["example.com"].handle_query(
        Message.query("example.com", RRType.A, msg_id=1), tcp=True)
    q = Message.query("example.com", RRType.A, msg_id=2)
    q.edns = Edns(udp_payload_size=4096, do=True)
    signed = servers["example.com"].handle_query(q, tcp=True)
    print(f"  plain answer : {response_size(plain)} bytes")
    print(f"  signed answer: {response_size(signed)} bytes "
          f"(+{response_size(signed) - response_size(plain)} for the RRSIG)")

    print("\nUDP truncation -> TCP fallback:")
    q3 = Message.query("example.com", RRType.A, msg_id=3)
    q3.edns = Edns(udp_payload_size=512, do=True)
    udp = servers["example.com"].handle_query(q3)
    print(f"  over UDP with a 512-byte budget: TC={udp.flags.tc}, "
          f"{len(udp.answers)} answers")
    tcp = servers["example.com"].handle_query(q3, tcp=True)
    print(f"  retried over TCP:                TC={tcp.flags.tc}, "
          f"{len(tcp.answers)} answers")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
