#!/usr/bin/env python3
"""The TransIP case study (§5.1): two attacks on a large Dutch provider.

Reproduces Table 2 and Figures 2-3 as text: telescope-side attack
metrics for nameservers A/B/C (observed ppm, extrapolated pps, inferred
traffic volume, attacker IP count), and the OpenINTEL-side RTT / timeout
time series around both attacks — including the December aftermath that
outlived the telescope-visible attack, and the March attack whose ~20%
timeout rate made domains effectively unreachable.

Run:  python examples/transip_case_study.py
"""

import sys
import time

from repro import WorldConfig, run_study
from repro.core.metrics import impact_series
from repro.telescope.feed import ppm_to_victim_pps
from repro.util.tables import Table, format_bps, format_count, format_si
from repro.util.timeutil import HOUR, Window, format_ts, parse_ts

DEC_WINDOW = Window(parse_ts("2020-11-30 20:00"), parse_ts("2020-12-01 12:00"))
MAR_WINDOW = Window(parse_ts("2021-03-01 18:00"), parse_ts("2021-03-02 04:00"))


def telescope_table(study, window, title):
    transip = study.world.providers["TransIP"]
    label_of = {ns.ip: chr(ord("A") + i)
                for i, ns in enumerate(transip.nameservers)}
    table = Table(["NS", "observed rate (ppm)", "extrapolated (pps)",
                   "inferred volume", "attacker IPs"],
                  title=title)
    attacks = [a for a in study.feed.attacks
               if a.victim_ip in label_of and window.contains(a.start)]
    for attack in sorted(attacks, key=lambda a: label_of[a.victim_ip]):
        pps = ppm_to_victim_pps(attack.max_ppm)
        # TCP SYN floods: ~60-byte packets.
        volume = format_bps(pps * 60 * 8)
        table.add_row([
            label_of[attack.victim_ip],
            format_si(attack.max_ppm),
            format_si(pps),
            volume,
            format_si(attack.inferred_attacker_ips()),
        ])
    return table


def rtt_series(study, nsset_id, window, title):
    table = Table(["time (UTC)", "measured", "avg RTT (ms)", "impact",
                   "timeout %"], title=title)
    series = impact_series(study.store, nsset_id, window)
    for point in series.points:
        if point.n == 0:
            continue
        impact = f"{point.impact:.1f}x" if point.impact else "-"
        rtt = f"{point.avg_rtt:.0f}" if point.avg_rtt else "-"
        table.add_row([format_ts(point.ts), point.n, rtt, impact,
                       f"{(point.timeouts / point.n) * 100:.0f}%"])
    table.caption = (f"baseline {series.baseline_rtt:.1f} ms | window "
                     f"failure rate {series.failure_rate:.1%}")
    return table


def main() -> int:
    config = WorldConfig(
        seed=7,
        start="2020-11-01",
        end_exclusive="2021-04-01",
        n_domains=2500,
        n_selfhosted_providers=20,
        n_filler_providers=10,
        attacks_per_month=200,
    )
    print("running study (Nov 2020 - Mar 2021)...", file=sys.stderr)
    t0 = time.time()
    study = run_study(config)
    print(f"done in {time.time() - t0:.1f}s\n", file=sys.stderr)

    record = next(d for d in study.world.directory.domains
                  if d.provider_name == "TransIP" and not d.misconfig
                  and d.secondary_provider is None)

    print(telescope_table(
        study, DEC_WINDOW,
        "December 2020 attack - telescope view (paper Table 2: A=21.8Kppm/"
        "1.4Gbps/5.79M, B=3.8K/247Mbps/1.57M, C=2.9K/188Mbps/1.33M)").render())
    print()
    print(telescope_table(
        study, MAR_WINDOW,
        "March 2021 attack - telescope view (paper Table 2: A=125Kppm/8Gbps/7M, "
        "B=123K/7.8Gbps/6.19M, C=13K/845Mbps/823K)").render())
    print()
    print(rtt_series(
        study, record.nsset_id,
        Window(parse_ts("2020-11-30 22:00"), parse_ts("2020-12-01 10:00")),
        "December attack - OpenINTEL RTT series (paper Fig. 2: ~10x RTT, "
        "impairment persists ~8h past the attack; Fig. 3: negligible "
        "timeouts)").render())
    print()
    print(rtt_series(
        study, record.nsset_id,
        Window(parse_ts("2021-03-01 19:00"), parse_ts("2021-03-02 02:00")),
        "March attack - OpenINTEL RTT series (paper Fig. 2: larger "
        "impairment; Fig. 3: ~20% timeouts)").render())

    transip_domains = [d for d in study.world.directory.domains
                       if d.provider_name == "TransIP" and not d.misconfig]
    third_party = sum(1 for d in transip_domains if d.third_party_web)
    print(f"\nTransIP hosted {format_count(len(transip_domains))} domains "
          f"here ({sum(1 for d in transip_domains if d.tld == 'nl')} under "
          f".nl); {third_party} ({third_party / len(transip_domains):.0%}) "
          f"use third-party web hosting (paper: ~27%) - during the March "
          f"attack those sites were unreachable despite healthy web "
          f"infrastructure, because DNS resolution itself failed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
