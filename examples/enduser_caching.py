#!/usr/bin/env python3
"""End-user impact under caching (§6.3.1's discussion).

The paper notes that whether a resolution failure reaches end users
depends on caching: "a popular domain with a high TTL value may be less
affected than a less popular one." This example runs the cache model
over the March 2021 TransIP attack profile and prints the user-visible
failure share for a grid of (popularity, TTL) configurations — plus the
Moura et al. 2018 result that caching tolerates ~50% loss.

Run:  python examples/enduser_caching.py
"""

from repro.core.enduser import CacheScenario, caching_grid, simulate_enduser_impact
from repro.util.tables import Table, format_pct
from repro.util.timeutil import HOUR, Window, parse_ts

import random

# The TransIP March 2021 attack shape: 6 hours, ~88% per-refresh failure
# probability at the heavily hit nameservers.
ATTACK = Window(parse_ts("2021-03-01 19:00"), parse_ts("2021-03-02 01:00"))
FAILURE_P = 0.88


def main() -> int:
    grid = caching_grid(seed=42, attack=ATTACK, failure_p=FAILURE_P)
    ttls = sorted({scenario.ttl_s for scenario, _ in grid})
    pops = sorted({scenario.queries_per_hour for scenario, _ in grid})

    table = Table(["queries/hour"] + [f"TTL {ttl}s" for ttl in ttls],
                  title=f"User-visible failure share during a 6h attack "
                        f"(refresh failure probability "
                        f"{format_pct(FAILURE_P, 0)})")
    by_key = {(s.queries_per_hour, s.ttl_s): impact for s, impact in grid}
    for qph in pops:
        row = [f"{qph:g}"]
        for ttl in ttls:
            row.append(format_pct(by_key[(qph, ttl)].failure_share))
        table.add_row(row)
    table.caption = ("paper §6.3.1: a popular domain with a high TTL is "
                     "less affected than an unpopular one")
    print(table.render())

    # Moura et al. 2018: caching absorbs ~50% packet loss almost fully.
    print("\ncache tolerance of partial loss (Moura et al. 2018: caching "
          "lets almost all users tolerate up to ~50% loss):")
    scenario = CacheScenario(queries_per_hour=60.0, ttl_s=3600)
    for loss in (0.25, 0.5, 0.75, 0.95):
        impacts = [simulate_enduser_impact(random.Random(seed), scenario,
                                           ATTACK, failure_p=loss)
                   for seed in range(10)]
        share = sum(i.failure_share for i in impacts) / len(impacts)
        print(f"  {loss:.0%} loss -> {share:6.1%} of user queries fail")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
