#!/usr/bin/env python3
"""The Russian-infrastructure case studies (§5.2): mil.ru and RZD.

Shows the reactive measurement platform (§4.3.1) doing what OpenINTEL's
agnostic daily query cannot: probing *every* nameserver of a domain
every five minutes during an attack and for 24 hours after, so the exact
outage and recovery timeline becomes visible.

Run:  python examples/russian_infrastructure.py
"""

import sys
import time

from repro import ReactivePlatform, WorldConfig, run_study
from repro.util.tables import Table
from repro.util.timeutil import HOUR, Window, format_ts, parse_ts

MILRU_ATTACK = Window(parse_ts("2022-03-11 10:00"), parse_ts("2022-03-18 20:00"))
RZD_ATTACK = Window(parse_ts("2022-03-08 15:30"), parse_ts("2022-03-08 20:45"))


def availability_overview(store, domain_id, window, step_s, title):
    """Coarse availability table: share of reactive probes answered."""
    table = Table(["interval start", "probes", "answered"], title=title)
    series = store.availability_series(domain_id)
    bucket = window.start
    while bucket < window.end:
        chunk = [(ts, share, n) for ts, share, n in series
                 if bucket <= ts < bucket + step_s]
        if chunk:
            probes = sum(n for _, _, n in chunk)
            answered = sum(share * n for _, share, n in chunk)
            table.add_row([format_ts(bucket), probes,
                           f"{answered / probes:.0%}"])
        bucket += step_s
    return table


def main() -> int:
    config = WorldConfig(
        seed=11,
        start="2022-02-01",
        end_exclusive="2022-04-01",
        n_domains=2000,
        n_selfhosted_providers=20,
        n_filler_providers=10,
        attacks_per_month=200,
    )
    print("running study (Feb-Mar 2022)...", file=sys.stderr)
    t0 = time.time()
    study = run_study(config)
    print(f"done in {time.time() - t0:.1f}s", file=sys.stderr)

    # --- mil.ru ------------------------------------------------------------
    milru = study.world.directory.get_by_name("mil.ru")
    info = study.metadata.info(milru.nsset_id, MILRU_ATTACK.start)
    print(f"\nmil.ru deployment: {len(info.ips)} nameservers, "
          f"{info.n_slash24} x /24, {info.n_asns} ASN, {info.anycast_label} "
          f"- the paper's textbook illustration of poor resilience.\n")

    print("OpenINTEL daily view (paper: complete resolution failure "
          "March 12-16 inclusive):")
    table = Table(["day", "queries", "resolved"])
    day = parse_ts("2022-03-09")
    while day < parse_ts("2022-03-21"):
        agg = study.store.day_aggregate(milru.nsset_id, day)
        if agg:
            table.add_row([format_ts(day)[:10], agg.n, agg.ok_n])
        day += 24 * HOUR
    print(table.render())

    print("\nrunning reactive platform over the mil.ru attack "
          "(probing all 3 nameservers every 5 minutes)...", file=sys.stderr)
    platform = ReactivePlatform(study.world)
    store = platform.run(study.feed, window=MILRU_ATTACK)
    print(availability_overview(
        store, milru.domain_id, MILRU_ATTACK.expand(after=24 * HOUR),
        12 * HOUR,
        "mil.ru reactive availability (paper: unresolvable for the attack "
        "duration; geofence blackout Mar 12 - Mar 17 06:00)").render())

    # --- RZD ----------------------------------------------------------------
    rzd = study.world.directory.get_by_name("rzd.ru")
    info = study.metadata.info(rzd.nsset_id, RZD_ATTACK.start)
    print(f"\nrzd.ru deployment: {len(info.ips)} nameservers, "
          f"{info.n_slash24} x /24, {info.n_asns} ASN "
          f"(slightly more resilient than mil.ru, but the attacker hit "
          f"all three nameservers).")

    print("\nrunning reactive platform over the RZD attack...", file=sys.stderr)
    platform2 = ReactivePlatform(study.world)
    store2 = platform2.run(study.feed, window=RZD_ATTACK)
    print(availability_overview(
        store2, rzd.domain_id,
        Window(RZD_ATTACK.start, parse_ts("2022-03-09 12:00")), 2 * HOUR,
        "rzd.ru reactive availability (paper: attack 15:30-20:45 Mar 8; "
        "intermittently responsive from 06:00 Mar 9 - the IT-Army Telegram "
        "call went out at 15:43, 12 min after the RSDoS-inferred start)"
    ).render())

    first = store2.first_responsive_after(rzd.domain_id,
                                          parse_ts("2022-03-08 21:00"))
    if first:
        print(f"\nfirst successful probe after the attack: {format_ts(first)} "
              f"(paper: 06:00 the next morning)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
