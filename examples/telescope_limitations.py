#!/usr/bin/env python3
"""Quantifying the telescope's blind spots (§4.3) and the multi-vantage
future direction (§9).

Because we hold the simulation's ground truth, we can measure what the
paper could only discuss: how many attacks the telescope misses entirely
(reflected/unspoofed), how badly it under-estimates multi-vector
attacks, and how often a single measurement vantage point would have
mis-judged an attack on anycast infrastructure because of catchment.

Run:  python examples/telescope_limitations.py
"""

import sys
import time

from repro import WorldConfig, run_study
from repro.core.vantage import masking_analysis
from repro.core.visibility import analyze_visibility
from repro.util.tables import Table, format_pct


def main() -> int:
    config = WorldConfig(
        seed=42,
        start="2021-01-01",
        end_exclusive="2021-07-01",
        n_domains=5000,
        attacks_per_month=800,
    )
    print("running six-month study...", file=sys.stderr)
    t0 = time.time()
    study = run_study(config)
    print(f"done in {time.time() - t0:.1f}s\n", file=sys.stderr)

    # --- visibility oracle ---------------------------------------------------
    report = analyze_visibility(study.world.attacks, study.feed)
    table = Table(["attack class", "detected", "total", "detection rate"],
                  title="Telescope visibility by attack class (§4.3; "
                        "Jonker et al.: ~60% of attacks are randomly "
                        "spoofed, 40% reflected and invisible)")
    for name, (detected, total) in sorted(report.by_class.items()):
        table.add_row([name, detected, total,
                       format_pct(detected / total if total else 0.0)])
    table.caption = (f"overall detection rate "
                     f"{format_pct(report.detection_rate)}")
    print(table.render())

    print()
    if report.multivector_underestimate is not None:
        print(f"multi-vector attacks: telescope sees a median of "
              f"{report.multivector_underestimate:.0%} of the true rate "
              f"(the invisible vector is missed entirely, §6.4's "
              f"under-estimation)")
    if report.pure_spoofed_estimate is not None:
        print(f"pure randomly-spoofed attacks: rate estimated at "
              f"{report.pure_spoofed_estimate:.0%} of truth "
              f"(the x341/60 extrapolation works)")
    if report.duration_coverage is not None:
        print(f"median duration coverage of detected attacks: "
              f"{report.duration_coverage:.0%}")

    # --- multi-vantage masking ------------------------------------------------
    print("\nprobing attacked nameservers from three vantage points "
          "(eu-west, us-east, ap-east)...", file=sys.stderr)
    results = masking_analysis(study.world, study.feed,
                               regions=("eu-west", "us-east", "ap-east"),
                               max_attacks=150)
    disagreements = [r for r in results if r.max_disagreement > 0.3]
    masked = [r for r in results if r.masked_from]
    print(f"\nmulti-vantage view of {len(results)} attacked nameservers:")
    print(f"  vantage disagreement > 30% availability : "
          f"{len(disagreements)} ({len(disagreements) / len(results):.0%})")
    print(f"  attack fully masked from some region    : {len(masked)}")
    if masked:
        example = masked[0]
        obs = {o.region: f"{o.answered_share:.0%}"
               for o in example.observations}
        print(f"  example: availability per region {obs} - a single "
              f"vantage in the healthy region would have called this "
              f"attack harmless (the §4.3 catchment-masking effect)")
    else:
        print("  (none in this run: the study world's anycast tiers are "
              "provisioned to absorb attacks, which is itself the paper's "
              "Figure 11 finding)")

    # First-principles masking demo: a skewed-catchment deployment where
    # only the largest site drowns.
    from repro.anycast.deployment import AnycastDeployment
    from repro.world.capacity import overload_drop

    deployment = AnycastDeployment.build(seed=9, n_sites=5,
                                         per_site_capacity_pps=100_000.0,
                                         skew=0.9)
    attack_pps = 1_200_000.0
    print("\ncatchment masking from first principles: one 1.2 Mpps attack "
          "on a 5-site anycast deployment with skewed catchments:")
    for site in deployment.sites:
        util = deployment.load_at_site(site, attack_pps)
        drop = overload_drop(util, 0.8)
        verdict = "DROWNED" if drop > 0.5 else ("strained" if drop > 0
                                                else "healthy")
        print(f"  {site.region:10s} catchment {site.catchment_weight:5.1%} "
              f"-> load {util:5.2f}x, drop {drop:5.1%}  [{verdict}]")
    print("  a probe from a 'healthy' region reports the service fine "
          "while users behind the drowned site are dark - the paper's "
          "motivation for multiple vantage points (§9).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
